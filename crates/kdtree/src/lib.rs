//! Parallel spatial-median kd-tree.
//!
//! The tree described in Section 2.3 and used by every algorithm in the
//! paper: nodes split the widest dimension of their bounding box at the
//! spatial midpoint, children are built in parallel, and (per Section 3.1.1)
//! leaves hold exactly one point. Slabs of exact duplicates (which no plane
//! separates) are split by rank instead, so the singleton-leaf invariant —
//! on which the WSPD's exact-pair-cover property rests — holds even for
//! degenerate inputs.
//!
//! Layout: nodes live in a flat arena. A subtree over `k` points owns the
//! contiguous slab of exactly `2k - 1` slots starting at its own id, which
//! makes the parallel build allocation-free after one upfront `Vec` and
//! keeps every subtree's nodes contiguous for cache-friendly traversal.

pub mod knn;
pub mod range;

use parclust_geom::{Aabb, Point};

pub use knn::{AllKnn, KnnHeap};

/// Node identifier within a [`KdTree`] arena.
pub type NodeId = u32;
/// Marker for "no child".
pub const NULL_NODE: NodeId = u32::MAX;

/// Below this subtree size the build recursion runs sequentially.
const BUILD_GRAIN: usize = 4096;

/// A kd-tree node covering the permuted point range `start..end`.
#[derive(Debug, Clone, Copy)]
pub struct Node<const D: usize> {
    pub bbox: Aabb<D>,
    pub start: u32,
    pub end: u32,
    pub left: NodeId,
    pub right: NodeId,
}

impl<const D: usize> Default for Node<D> {
    fn default() -> Self {
        Node {
            bbox: Aabb::empty(),
            start: 0,
            end: 0,
            left: NULL_NODE,
            right: NULL_NODE,
        }
    }
}

impl<const D: usize> Node<D> {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left == NULL_NODE
    }

    #[inline]
    pub fn size(&self) -> usize {
        (self.end - self.start) as usize
    }
}

/// Parallel spatial-median kd-tree over a point set.
///
/// The tree owns a *permuted copy* of the input points; `idx[i]` maps
/// permuted position `i` back to the original point index.
pub struct KdTree<const D: usize> {
    pub points: Vec<Point<D>>,
    pub idx: Vec<u32>,
    pub nodes: Vec<Node<D>>,
    root: NodeId,
    /// Lazily materialized copy of the points in original order.
    pub(crate) original_points: std::sync::OnceLock<Vec<Point<D>>>,
}

impl<const D: usize> KdTree<D> {
    /// Build the tree in parallel. `O(n log n)` work (bounding boxes are
    /// recomputed exactly at every level), polylogarithmic depth.
    pub fn build(input: &[Point<D>]) -> Self {
        let n = input.len();
        assert!(n > 0, "KdTree::build requires at least one point");
        assert!(n < (u32::MAX / 2) as usize, "point count exceeds u32 arena");
        let _span = parclust_obs::span!("kdtree.build", points = n);
        let mut points = input.to_vec();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut nodes: Vec<Node<D>> = vec![Node::default(); 2 * n - 1];
        build_recurse(&mut points, &mut idx, &mut nodes, 0, 0);
        KdTree {
            points,
            idx,
            nodes,
            root: 0,
            original_points: std::sync::OnceLock::new(),
        }
    }

    /// Reassemble a tree from previously serialized parts (e.g. a
    /// `parclust-serve` model artifact) without re-running the parallel
    /// build. `points` are the *permuted* points (tree order), `idx` maps
    /// permuted position to original index, and `nodes` is the arena with
    /// the root at slot 0 — exactly the public fields of a built tree.
    ///
    /// Validates the structural invariants the query paths rely on (arena
    /// shape, child ranges partitioning their parent, in-bounds indices,
    /// `idx` a permutation); returns `Err` with a description on the first
    /// violation so corrupted artifacts are rejected instead of causing
    /// panics or wrong answers deep inside a traversal.
    pub fn from_parts(
        points: Vec<Point<D>>,
        idx: Vec<u32>,
        nodes: Vec<Node<D>>,
    ) -> Result<Self, String> {
        let n = points.len();
        if n == 0 {
            return Err("tree must hold at least one point".into());
        }
        if idx.len() != n {
            return Err(format!("idx length {} != point count {n}", idx.len()));
        }
        if nodes.len() != 2 * n - 1 {
            return Err(format!(
                "arena length {} != 2n-1 = {}",
                nodes.len(),
                2 * n - 1
            ));
        }
        let mut seen = vec![false; n];
        for &i in &idx {
            match seen.get_mut(i as usize) {
                Some(s) if !*s => *s = true,
                _ => return Err(format!("idx is not a permutation (index {i})")),
            }
        }
        // Walk from the root: every node's range must be inside the parent's
        // and children must partition it; every leaf must be a singleton.
        let mut stack: Vec<NodeId> = vec![0];
        let mut covered = 0usize;
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            visited += 1;
            if visited > nodes.len() {
                // A node reachable via two parents (the arena encodes a DAG
                // or cycle, not a tree) revisits slots; bail out rather than
                // looping.
                return Err("arena is not a tree (node visited twice)".into());
            }
            let node = nodes
                .get(id as usize)
                .ok_or_else(|| format!("node id {id} out of arena bounds"))?;
            if node.start >= node.end || node.end as usize > n {
                return Err(format!(
                    "node {id} has invalid range {}..{}",
                    node.start, node.end
                ));
            }
            if node.is_leaf() {
                if node.size() != 1 {
                    return Err(format!(
                        "leaf {id} covers {} points (must be 1)",
                        node.size()
                    ));
                }
                covered += 1;
                continue;
            }
            let (l, r) = (node.left, node.right);
            if l as usize >= nodes.len() || r as usize >= nodes.len() {
                return Err(format!("node {id} has out-of-bounds children"));
            }
            let (ln, rn) = (&nodes[l as usize], &nodes[r as usize]);
            if ln.start != node.start || ln.end != rn.start || rn.end != node.end {
                return Err(format!("children of node {id} do not partition its range"));
            }
            stack.push(l);
            stack.push(r);
        }
        if covered != n {
            return Err(format!("leaves cover {covered} points, expected {n}"));
        }
        Ok(KdTree {
            points,
            idx,
            nodes,
            root: 0,
            original_points: std::sync::OnceLock::new(),
        })
    }

    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<D> {
        &self.nodes[id as usize]
    }

    /// Number of points in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total arena slots (including slack from duplicate-point leaves).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Permuted points covered by `node` (contiguous).
    #[inline]
    pub fn node_points(&self, id: NodeId) -> &[Point<D>] {
        let n = self.node(id);
        &self.points[n.start as usize..n.end as usize]
    }

    /// Original indices of the points covered by `node`.
    #[inline]
    pub fn node_point_ids(&self, id: NodeId) -> &[u32] {
        let n = self.node(id);
        &self.idx[n.start as usize..n.end as usize]
    }

    /// Bottom-up aggregation: computes a value per node from a leaf function
    /// over permuted point ranges and a merge function, in parallel. The
    /// returned vector is indexed by [`NodeId`]; slots not reachable from the
    /// root keep `T::default()`.
    pub fn aggregate_bottom_up<T, L, M>(&self, leaf: &L, merge: &M) -> Vec<T>
    where
        T: Default + Clone + Send + Sync,
        L: Fn(&Node<D>, &[Point<D>], &[u32]) -> T + Sync,
        M: Fn(&T, &T) -> T + Sync,
    {
        let mut out: Vec<T> = vec![T::default(); self.nodes.len()];
        self.aggregate_into(self.root, &mut out[..], self.root as usize, leaf, merge);
        out
    }

    fn aggregate_into<T, L, M>(
        &self,
        id: NodeId,
        slab: &mut [T],
        slab_base: usize,
        leaf: &L,
        merge: &M,
    ) where
        T: Default + Clone + Send + Sync,
        L: Fn(&Node<D>, &[Point<D>], &[u32]) -> T + Sync,
        M: Fn(&T, &T) -> T + Sync,
    {
        let node = self.node(id);
        if node.is_leaf() {
            slab[id as usize - slab_base] =
                leaf(node, self.node_points(id), self.node_point_ids(id));
            return;
        }
        let (l, r) = (node.left, node.right);
        // The arena slab of a subtree is contiguous and the right child's
        // slab starts exactly at its own id; split the output there so the
        // children recurse into disjoint slices.
        let split_at = r as usize - slab_base;
        let (slab_l, slab_r) = slab.split_at_mut(split_at);
        if node.size() >= BUILD_GRAIN {
            rayon::join(
                || self.aggregate_into(l, slab_l, slab_base, leaf, merge),
                || self.aggregate_into(r, slab_r, r as usize, leaf, merge),
            );
        } else {
            self.aggregate_into(l, slab_l, slab_base, leaf, merge);
            self.aggregate_into(r, slab_r, r as usize, leaf, merge);
        }
        let merged = merge(&slab[l as usize - slab_base], &slab[r as usize - slab_base]);
        slab[id as usize - slab_base] = merged;
    }
}

/// Recursive parallel build over `points[..]`/`idx[..]` (absolute point
/// offset `point_base`), writing nodes into `nodes[..]` whose slot 0 has
/// absolute id `node_base`.
fn build_recurse<const D: usize>(
    points: &mut [Point<D>],
    idx: &mut [u32],
    nodes: &mut [Node<D>],
    point_base: u32,
    node_base: u32,
) {
    let k = points.len();
    debug_assert!(k >= 1);
    let bbox = Aabb::from_points(points);

    if k == 1 {
        nodes[0] = Node {
            bbox,
            start: point_base,
            end: point_base + 1,
            left: NULL_NODE,
            right: NULL_NODE,
        };
        return;
    }

    // Spatial median: split the widest dimension at its midpoint. Degenerate
    // slabs (exact duplicates, or sub-ulp extents where the midpoint equals
    // an endpoint) fall back to a rank split so both sides stay non-empty
    // and every leaf ends up a singleton.
    let mut split = 0;
    if bbox.diag_sq() > 0.0 {
        let dim = bbox.widest_dim();
        let mid = 0.5 * (bbox.lo[dim] + bbox.hi[dim]);
        split = partition_in_place(points, idx, dim, mid);
    }
    if split == 0 || split == k {
        split = k / 2;
    }

    // Left subtree: slab [1, 2*split), right subtree: slab [2*split, 2k-1).
    let left_id = node_base + 1;
    let right_id = node_base + 2 * split as u32;
    nodes[0] = Node {
        bbox,
        start: point_base,
        end: point_base + k as u32,
        left: left_id,
        right: right_id,
    };
    let (lp, rp) = points.split_at_mut(split);
    let (li, ri) = idx.split_at_mut(split);
    let (_, rest) = nodes.split_at_mut(1);
    let (ln, rn) = rest.split_at_mut(2 * split - 1);

    if k >= BUILD_GRAIN {
        rayon::join(
            || build_recurse(lp, li, ln, point_base, left_id),
            || build_recurse(rp, ri, rn, point_base + split as u32, right_id),
        );
    } else {
        build_recurse(lp, li, ln, point_base, left_id);
        build_recurse(rp, ri, rn, point_base + split as u32, right_id);
    }
}

/// Hoare-style in-place partition of `points`/`idx` by `coord[dim] < mid`;
/// returns the number of elements in the "less" prefix.
fn partition_in_place<const D: usize>(
    points: &mut [Point<D>],
    idx: &mut [u32],
    dim: usize,
    mid: f64,
) -> usize {
    let mut i = 0usize;
    let mut j = points.len();
    loop {
        while i < j && points[i][dim] < mid {
            i += 1;
        }
        while i < j && points[j - 1][dim] >= mid {
            j -= 1;
        }
        if i >= j {
            return i;
        }
        points.swap(i, j - 1);
        idx.swap(i, j - 1);
        i += 1;
        j -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    pub(crate) fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-100.0..100.0);
                }
                Point(c)
            })
            .collect()
    }

    fn check_tree_invariants<const D: usize>(tree: &KdTree<D>) {
        // Every point covered exactly once by leaves; bboxes contain their
        // points; children partition the parent's range.
        let n = tree.len();
        let mut covered = vec![false; n];
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            assert!(node.size() >= 1);
            for p in tree.node_points(id) {
                assert!(node.bbox.contains(p), "bbox must contain node points");
            }
            if node.is_leaf() {
                assert_eq!(node.size(), 1, "leaves must be singletons");
                for i in node.start..node.end {
                    assert!(!covered[i as usize], "point covered twice");
                    covered[i as usize] = true;
                }
            } else {
                let l = tree.node(node.left);
                let r = tree.node(node.right);
                assert_eq!(l.start, node.start);
                assert_eq!(l.end, r.start);
                assert_eq!(r.end, node.end);
                stack.push(node.left);
                stack.push(node.right);
            }
        }
        assert!(covered.iter().all(|&c| c), "all points must be covered");
        // The permutation is a bijection.
        let mut seen = vec![false; n];
        for &i in &tree.idx {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
    }

    #[test]
    fn build_single_point() {
        let tree = KdTree::build(&[Point([1.0, 2.0])]);
        assert_eq!(tree.len(), 1);
        assert!(tree.node(tree.root()).is_leaf());
        check_tree_invariants(&tree);
    }

    #[test]
    fn build_small_2d() {
        let pts = random_points::<2>(100, 1);
        let tree = KdTree::build(&pts);
        check_tree_invariants(&tree);
        // Singleton leaves for distinct points.
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            if node.is_leaf() {
                assert_eq!(node.size(), 1);
            } else {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
    }

    #[test]
    fn build_large_parallel_3d() {
        let pts = random_points::<3>(50_000, 2);
        let tree = KdTree::build(&pts);
        check_tree_invariants(&tree);
    }

    #[test]
    fn build_with_duplicates() {
        let mut pts = random_points::<2>(50, 3);
        // Inject many exact duplicates.
        for i in 0..40 {
            pts.push(pts[i % 10]);
        }
        let tree = KdTree::build(&pts);
        check_tree_invariants(&tree);
    }

    #[test]
    fn build_all_identical() {
        // Exact duplicates are split by rank: still one point per leaf.
        let pts = vec![Point([3.0, 3.0]); 64];
        let tree = KdTree::build(&pts);
        assert!(!tree.node(tree.root()).is_leaf());
        assert_eq!(tree.node(tree.root()).size(), 64);
        check_tree_invariants(&tree);
    }

    #[test]
    fn build_collinear() {
        let pts: Vec<Point<2>> = (0..500).map(|i| Point([i as f64, 0.0])).collect();
        let tree = KdTree::build(&pts);
        check_tree_invariants(&tree);
    }

    #[test]
    fn aggregate_sizes() {
        let pts = random_points::<2>(10_000, 4);
        let tree = KdTree::build(&pts);
        // Aggregate: subtree point counts.
        let counts =
            tree.aggregate_bottom_up(&|node, _, _| node.size(), &|a: &usize, b: &usize| a + b);
        assert_eq!(counts[tree.root() as usize], 10_000);
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            assert_eq!(counts[id as usize], node.size());
            if !node.is_leaf() {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
    }

    #[test]
    fn from_parts_roundtrips_and_answers_queries() {
        let pts = random_points::<3>(2_000, 8);
        let built = KdTree::build(&pts);
        let re = KdTree::from_parts(built.points.clone(), built.idx.clone(), built.nodes.clone())
            .expect("valid parts");
        check_tree_invariants(&re);
        // Queries against the reassembled tree match the original.
        for q in pts.iter().step_by(97) {
            assert_eq!(built.knn(q, 5), re.knn(q, 5));
        }
    }

    #[test]
    fn from_parts_rejects_corrupt_arenas() {
        let pts = random_points::<2>(64, 9);
        let t = KdTree::build(&pts);
        // Wrong arena length.
        assert!(
            KdTree::from_parts(t.points.clone(), t.idx.clone(), t.nodes[..5].to_vec()).is_err()
        );
        // idx not a permutation.
        let mut bad_idx = t.idx.clone();
        bad_idx[0] = bad_idx[1];
        assert!(KdTree::from_parts(t.points.clone(), bad_idx, t.nodes.clone()).is_err());
        // Child range corruption.
        let mut bad_nodes = t.nodes.clone();
        let root_left = bad_nodes[0].left as usize;
        bad_nodes[root_left].end += 1;
        assert!(KdTree::from_parts(t.points.clone(), t.idx.clone(), bad_nodes).is_err());
        // Cycle: root points at itself.
        let mut cyc = t.nodes.clone();
        cyc[0].left = 0;
        assert!(KdTree::from_parts(t.points.clone(), t.idx.clone(), cyc).is_err());
        // Empty tree.
        assert!(KdTree::<2>::from_parts(Vec::new(), Vec::new(), Vec::new()).is_err());
    }

    #[test]
    fn aggregate_min_coordinate_matches_bbox() {
        let pts = random_points::<3>(30_000, 5);
        let tree = KdTree::build(&pts);
        #[derive(Clone)]
        struct MinX(f64);
        impl Default for MinX {
            fn default() -> Self {
                MinX(f64::INFINITY)
            }
        }
        let mins = tree.aggregate_bottom_up(
            &|_, pts: &[Point<3>], _| MinX(pts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min)),
            &|a: &MinX, b: &MinX| MinX(a.0.min(b.0)),
        );
        let mut stack = vec![tree.root()];
        while let Some(id) = stack.pop() {
            let node = tree.node(id);
            assert_eq!(mins[id as usize].0, node.bbox.lo[0]);
            if !node.is_leaf() {
                stack.push(node.left);
                stack.push(node.right);
            }
        }
    }
}
