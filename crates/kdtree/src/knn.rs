//! k-nearest-neighbor queries.
//!
//! All-points kNN is the substrate for HDBSCAN\*'s core distances
//! (Section 3.2.1: "we perform k-NN queries using Euclidean distance with
//! k = minPts"). Queries run independently in parallel over all points —
//! `O(k n log n)` expected work for bounded spread, `O(log n)` depth —
//! matching the primitive attributed to Callahan and Kosaraju [13].
//!
//! Once the descent reaches a subtree of at most [`KNN_BATCH`] points, the
//! whole permuted range is scanned with the SoA lane kernel
//! ([`parclust_data::PointBlock::dist_sq_into`]) instead of recursing leaf
//! by leaf: one vectorized pass over contiguous lanes replaces ~2·B node
//! visits and B scattered point gathers.

use parclust_geom::Point;
use rayon::prelude::*;

use crate::{KdTree, NodeId};

/// Subtrees of at most this many points are brute-forced with the lane
/// kernel instead of being descended. Distances are identical either way
/// (the kernel accumulates in dimension order, matching `dist_sq`); the
/// batch only *adds* candidates the descent might have pruned, which the
/// k-smallest heap discards again.
pub const KNN_BATCH: usize = 16;

/// A fixed-capacity max-heap of `(squared distance, point id)` pairs that
/// keeps the `k` smallest distances seen.
pub struct KnnHeap {
    k: usize,
    // (dist_sq, id), heap-ordered with the largest dist_sq at index 0.
    items: Vec<(f64, u32)>,
}

impl KnnHeap {
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        KnnHeap {
            k,
            items: Vec::with_capacity(k),
        }
    }

    /// Current pruning bound: the k-th smallest distance seen so far
    /// (infinite until the heap is full).
    #[inline]
    pub fn bound(&self) -> f64 {
        if self.items.len() < self.k {
            f64::INFINITY
        } else {
            self.items[0].0
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Offer a candidate; keeps it only if it beats the current bound.
    /// Ties are broken toward smaller ids for determinism.
    #[inline]
    pub fn offer(&mut self, d_sq: f64, id: u32) {
        if self.items.len() < self.k {
            self.items.push((d_sq, id));
            self.sift_up(self.items.len() - 1);
        } else if (d_sq, id) < self.items[0] {
            self.items[0] = (d_sq, id);
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[parent] < self.items[i] {
                self.items.swap(parent, i);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.items.len() && self.items[l] > self.items[largest] {
                largest = l;
            }
            if r < self.items.len() && self.items[r] > self.items[largest] {
                largest = r;
            }
            if largest == i {
                return;
            }
            self.items.swap(i, largest);
            i = largest;
        }
    }

    /// Drain into `(dist_sq, id)` pairs sorted by increasing distance.
    pub fn into_sorted(mut self) -> Vec<(f64, u32)> {
        self.items
            // analyze:allow(hotpath-unwrap) — distances are squared norms of finite coords, never NaN
            .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
        self.items
    }

    /// The largest distance currently held (the k-th neighbor distance once
    /// full).
    pub fn max_dist_sq(&self) -> Option<f64> {
        self.items.first().map(|&(d, _)| d)
    }
}

/// Result of an all-points kNN query: for each original point index, its
/// `k` nearest neighbors (including itself) sorted by distance.
pub struct AllKnn {
    pub k: usize,
    /// Flat `n × k` neighbor ids (original indices), row i = point i.
    pub ids: Vec<u32>,
    /// Flat `n × k` squared distances aligned with `ids`.
    pub dist_sq: Vec<f64>,
}

impl AllKnn {
    /// Neighbors of original point `i`, nearest first.
    pub fn neighbors(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = i * self.k;
        (&self.ids[lo..lo + self.k], &self.dist_sq[lo..lo + self.k])
    }

    /// Distance to the k-th nearest neighbor of point `i` (including the
    /// point itself) — the HDBSCAN\* *core distance* when `k = minPts`.
    pub fn kth_dist(&self, i: usize) -> f64 {
        self.kth_dist_sq(i).sqrt()
    }

    /// Raw squared distance to the k-th nearest neighbor of point `i` —
    /// [`AllKnn::kth_dist`] before the final `sqrt`. Incremental updates
    /// compare mutations against this value instead of the rounded root:
    /// the "does this mutation change point `i`'s core distance" predicate
    /// is then exact, because inserts/deletes move the same computed
    /// squared-distance multiset the k-th statistic is drawn from.
    pub fn kth_dist_sq(&self, i: usize) -> f64 {
        self.dist_sq[i * self.k + self.k - 1]
    }
}

impl<const D: usize> KdTree<D> {
    /// kNN of an arbitrary query point; returns up to `k` `(dist_sq,
    /// original id)` pairs sorted by distance. Points of the tree equal to
    /// the query are included (distance zero).
    pub fn knn(&self, q: &Point<D>, k: usize) -> Vec<(f64, u32)> {
        let mut heap = KnnHeap::new(k.min(self.len()));
        self.knn_recurse(self.root(), q, &mut heap);
        heap.into_sorted()
    }

    fn knn_recurse(&self, id: NodeId, q: &Point<D>, heap: &mut KnnHeap) {
        let size = self.node_size(id);
        if size <= KNN_BATCH {
            // Batched subtree scan: one lane-kernel pass over the contiguous
            // permuted range (covers the singleton-leaf case too).
            let start = self.node_start(id) as usize;
            let mut buf = [0.0f64; KNN_BATCH];
            self.coords().dist_sq_into(q, start, size, &mut buf);
            for (&d_sq, &orig) in buf[..size].iter().zip(&self.idx[start..start + size]) {
                heap.offer(d_sq, orig);
            }
            return;
        }
        // Visit the nearer child first for better pruning.
        let (l, r) = self.children(id);
        let dl = self.bbox(l).dist_sq_to_point(q);
        let dr = self.bbox(r).dist_sq_to_point(q);
        let (first, d_first, second, d_second) = if dl <= dr {
            (l, dl, r, dr)
        } else {
            (r, dr, l, dl)
        };
        if d_first < heap.bound() {
            self.knn_recurse(first, q, heap);
        }
        if d_second < heap.bound() {
            self.knn_recurse(second, q, heap);
        }
    }

    /// All-points kNN, in parallel. Each point's neighbor list includes the
    /// point itself (distance 0), matching the paper's definition.
    pub fn knn_all(&self, k: usize) -> AllKnn {
        let n = self.len();
        let k = k.min(n);
        let mut ids = vec![0u32; n * k];
        let mut dist_sq_out = vec![0f64; n * k];
        ids.par_chunks_mut(k)
            .zip(dist_sq_out.par_chunks_mut(k))
            .enumerate()
            .for_each(|(orig, (id_row, d_row))| {
                // Rows are indexed by original id: find the query point by
                // original index via the inverse permutation lazily.
                let q = &self.points_by_original()[orig];
                let mut heap = KnnHeap::new(k);
                self.knn_recurse(self.root(), q, &mut heap);
                let sorted = heap.into_sorted();
                debug_assert_eq!(sorted.len(), k);
                for (j, (d, pid)) in sorted.into_iter().enumerate() {
                    id_row[j] = pid;
                    d_row[j] = d;
                }
            });
        AllKnn {
            k,
            ids,
            dist_sq: dist_sq_out,
        }
    }

    /// Lazily-built view of the points in original order (the tree stores
    /// them permuted, in SoA blocks).
    pub fn points_by_original(&self) -> &[Point<D>] {
        self.original_points
            .get_or_init(|| {
                let n = self.len();
                let mut out = vec![Point::default(); n];
                for (pos, &orig) in self.idx.iter().enumerate() {
                    out[orig as usize] = self.point(pos);
                }
                out
            })
            .as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parclust_geom::dist_sq;
    use rand::prelude::*;

    fn random_points<const D: usize>(n: usize, seed: u64) -> Vec<Point<D>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mut c = [0.0; D];
                for x in c.iter_mut() {
                    *x = rng.gen_range(-50.0..50.0);
                }
                Point(c)
            })
            .collect()
    }

    fn brute_knn<const D: usize>(pts: &[Point<D>], q: &Point<D>, k: usize) -> Vec<(f64, u32)> {
        let mut all: Vec<(f64, u32)> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (dist_sq(p, q), i as u32))
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn heap_keeps_k_smallest() {
        let mut h = KnnHeap::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].into_iter().enumerate() {
            h.offer(d, i as u32);
        }
        let got = h.into_sorted();
        assert_eq!(got, vec![(1.0, 1), (2.0, 3), (3.0, 4)]);
    }

    #[test]
    fn heap_tie_break_on_ids() {
        let mut h = KnnHeap::new(2);
        h.offer(1.0, 9);
        h.offer(1.0, 3);
        h.offer(1.0, 7);
        let got = h.into_sorted();
        assert_eq!(got, vec![(1.0, 3), (1.0, 7)]);
    }

    #[test]
    fn knn_matches_brute_force_2d() {
        let pts = random_points::<2>(500, 11);
        let tree = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let q = Point([rng.gen_range(-60.0..60.0), rng.gen_range(-60.0..60.0)]);
            for k in [1, 3, 10] {
                let got = tree.knn(&q, k);
                let want = brute_knn(&pts, &q, k);
                // Distances must agree exactly (ids may differ only on ties,
                // which the deterministic tie-break prevents).
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn knn_all_matches_brute_force_5d() {
        let pts = random_points::<5>(300, 12);
        let tree = KdTree::build(&pts);
        let k = 4;
        let all = tree.knn_all(k);
        for (i, p) in pts.iter().enumerate() {
            let want = brute_knn(&pts, p, k);
            let (ids, ds) = all.neighbors(i);
            for j in 0..k {
                assert_eq!(ds[j], want[j].0, "point {i} neighbor {j}");
                assert_eq!(ids[j], want[j].1, "point {i} neighbor {j}");
            }
            // Self is always the nearest neighbor at distance 0.
            assert_eq!(ids[0], i as u32);
            assert_eq!(ds[0], 0.0);
        }
    }

    #[test]
    fn knn_with_duplicates() {
        let mut pts = vec![Point([0.0, 0.0]); 5];
        pts.push(Point([1.0, 0.0]));
        pts.push(Point([2.0, 0.0]));
        let tree = KdTree::build(&pts);
        let got = tree.knn(&Point([0.0, 0.0]), 6);
        assert_eq!(got.len(), 6);
        // Five zero-distance duplicates then the point at distance 1.
        assert!(got[..5].iter().all(|&(d, _)| d == 0.0));
        assert_eq!(got[5].0, 1.0);
    }

    #[test]
    fn kth_dist_is_core_distance() {
        // Worked example from Figure 1 of the paper: point a at minPts=3 has
        // core distance 4 (b is its third nearest neighbor incl. itself).
        let pts = vec![
            Point([0.0, 0.0]), // a
            Point([4.0, 0.0]), // b (d(a,b) = 4)
            Point([1.0, 1.0]), // d (d(a,d) = sqrt(2))
        ];
        let tree = KdTree::build(&pts);
        let all = tree.knn_all(3);
        assert_eq!(all.kth_dist(0), 4.0);
    }

    #[test]
    fn knn_k_larger_than_n() {
        let pts = random_points::<2>(5, 13);
        let tree = KdTree::build(&pts);
        let got = tree.knn(&pts[0], 10);
        assert_eq!(got.len(), 5);
        let all = tree.knn_all(10);
        assert_eq!(all.k, 5);
    }

    #[test]
    fn knn_exact_on_batch_boundary_sizes() {
        // Tree sizes straddling KNN_BATCH exercise both the batched scan and
        // the descent above it.
        for n in [KNN_BATCH - 1, KNN_BATCH, KNN_BATCH + 1, 4 * KNN_BATCH + 3] {
            let pts = random_points::<3>(n, 21 + n as u64);
            let tree = KdTree::build(&pts);
            for q in &pts {
                assert_eq!(tree.knn(q, 3.min(n)), brute_knn(&pts, q, 3.min(n)));
            }
        }
    }
}
