//! Radius (range) queries.
//!
//! DBSCAN-style algorithms need "all points within distance ε of q"; the
//! kd-tree answers it by pruning subtrees whose bounding boxes are farther
//! than ε. Used by the direct DBSCAN\* implementation that the bench
//! harness contrasts with the one-hierarchy-many-ε HDBSCAN\* workflow the
//! paper advocates. Small undecided subtrees are scanned with the SoA lane
//! kernel rather than descended; the output order is unchanged because both
//! the descent and the batch emit points in ascending permuted order.

use parclust_geom::Point;

use crate::{KdTree, NodeId};

/// Subtrees of at most this many points are resolved with one lane-kernel
/// pass instead of further descent.
const RANGE_BATCH: usize = 16;

impl<const D: usize> KdTree<D> {
    /// Original indices of all points within Euclidean distance `radius`
    /// of `q` (inclusive), in arbitrary order. Includes any tree point
    /// equal to `q`.
    pub fn within_radius(&self, q: &Point<D>, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_radius_into(q, radius, &mut out);
        out
    }

    /// [`KdTree::within_radius`] into a reusable buffer (cleared first).
    pub fn within_radius_into(&self, q: &Point<D>, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        assert!(radius >= 0.0 && radius.is_finite());
        let r_sq = radius * radius;
        self.range_recurse(self.root(), q, r_sq, out);
    }

    /// Count of points within `radius` of `q` — enough for core-point
    /// tests, cheaper than materializing ids.
    pub fn count_within_radius(&self, q: &Point<D>, radius: f64) -> usize {
        let r_sq = radius * radius;
        let mut count = 0usize;
        self.range_count_recurse(self.root(), q, r_sq, &mut count);
        count
    }

    fn range_recurse(&self, id: NodeId, q: &Point<D>, r_sq: f64, out: &mut Vec<u32>) {
        if self.bbox(id).dist_sq_to_point(q) > r_sq {
            return;
        }
        let size = self.node_size(id);
        if size <= RANGE_BATCH {
            let start = self.node_start(id) as usize;
            let mut buf = [0.0f64; RANGE_BATCH];
            self.coords().dist_sq_into(q, start, size, &mut buf);
            for (&d_sq, &orig) in buf[..size].iter().zip(&self.idx[start..start + size]) {
                if d_sq <= r_sq {
                    out.push(orig);
                }
            }
            return;
        }
        let (l, r) = self.children(id);
        self.range_recurse(l, q, r_sq, out);
        self.range_recurse(r, q, r_sq, out);
    }

    /// Per-node maximum of a per-point radius field (squared), indexed by
    /// [`NodeId`] — the pruning annotation for [`KdTree::stab_radii_into`].
    /// `radius_sq_by_orig[i]` is the squared radius attached to original
    /// point `i` (e.g. its squared core distance). Non-finite radii are
    /// allowed: `f64::NEG_INFINITY` marks a point that no query can stab.
    pub fn max_radius_sq_annotation(&self, radius_sq_by_orig: &[f64]) -> Vec<f64> {
        assert_eq!(radius_sq_by_orig.len(), self.len());
        self.aggregate_bottom_up(
            &|_id, ids: &[u32]| {
                ids.iter()
                    .map(|&o| radius_sq_by_orig[o as usize])
                    .fold(f64::NEG_INFINITY, f64::max)
            },
            &|a: &f64, b: &f64| a.max(*b),
        )
    }

    /// Inverse range query ("stabbing"): original indices of all points `p`
    /// whose own ball contains `q` — `dist_sq(p, q) < radius_sq_by_orig[p]`
    /// (strict), or `<=` when `inclusive`. This is the affected-set query
    /// of incremental HDBSCAN\*: a mutation at `q` can only change the core
    /// distance of points whose core-distance ball reaches `q`.
    ///
    /// `node_max_sq` must be the [`KdTree::max_radius_sq_annotation`] of the
    /// same radius field; subtrees whose bounding box is farther from `q`
    /// than their largest radius are pruned. Comparisons happen on the raw
    /// squared distances produced by the same lane kernel the kNN path
    /// uses, so the predicate is exact (no sqrt rounding).
    pub fn stab_radii_into(
        &self,
        q: &Point<D>,
        radius_sq_by_orig: &[f64],
        node_max_sq: &[f64],
        inclusive: bool,
        out: &mut Vec<u32>,
    ) {
        assert_eq!(radius_sq_by_orig.len(), self.len());
        assert_eq!(node_max_sq.len(), self.arena_len());
        self.stab_recurse(
            self.root(),
            q,
            radius_sq_by_orig,
            node_max_sq,
            inclusive,
            out,
        );
    }

    fn stab_recurse(
        &self,
        id: NodeId,
        q: &Point<D>,
        radius_sq_by_orig: &[f64],
        node_max_sq: &[f64],
        inclusive: bool,
        out: &mut Vec<u32>,
    ) {
        let d_min = self.bbox(id).dist_sq_to_point(q);
        let max_r = node_max_sq[id as usize];
        // Every point in the subtree is at least d_min away; none can be
        // stabbed once d_min exceeds (or, for the strict predicate, reaches)
        // the largest radius below. NaN-free: d_min is a squared distance.
        if if inclusive {
            d_min > max_r
        } else {
            d_min >= max_r
        } {
            return;
        }
        let size = self.node_size(id);
        if size <= RANGE_BATCH {
            let start = self.node_start(id) as usize;
            let mut buf = [0.0f64; RANGE_BATCH];
            self.coords().dist_sq_into(q, start, size, &mut buf);
            for (&d_sq, &orig) in buf[..size].iter().zip(&self.idx[start..start + size]) {
                let r_sq = radius_sq_by_orig[orig as usize];
                if if inclusive { d_sq <= r_sq } else { d_sq < r_sq } {
                    out.push(orig);
                }
            }
            return;
        }
        let (l, r) = self.children(id);
        self.stab_recurse(l, q, radius_sq_by_orig, node_max_sq, inclusive, out);
        self.stab_recurse(r, q, radius_sq_by_orig, node_max_sq, inclusive, out);
    }

    fn range_count_recurse(&self, id: NodeId, q: &Point<D>, r_sq: f64, count: &mut usize) {
        let bbox = self.bbox(id);
        let d_min = bbox.dist_sq_to_point(q);
        if d_min > r_sq {
            return;
        }
        // Whole-subtree acceptance: the farthest box corner within range.
        let d_max = {
            let mut acc = 0.0;
            for i in 0..D {
                let lo = (q[i] - bbox.lo[i]).abs();
                let hi = (q[i] - bbox.hi[i]).abs();
                let d = lo.max(hi);
                acc += d * d;
            }
            acc
        };
        let size = self.node_size(id);
        if d_max <= r_sq {
            *count += size;
            return;
        }
        if size <= RANGE_BATCH {
            let start = self.node_start(id) as usize;
            let mut buf = [0.0f64; RANGE_BATCH];
            self.coords().dist_sq_into(q, start, size, &mut buf);
            *count += buf[..size].iter().filter(|&&d_sq| d_sq <= r_sq).count();
            return;
        }
        let (l, r) = self.children(id);
        self.range_count_recurse(l, q, r_sq, count);
        self.range_count_recurse(r, q, r_sq, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point([
                    rng.gen_range(-20.0..20.0),
                    rng.gen_range(-20.0..20.0),
                    rng.gen_range(-20.0..20.0),
                ])
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = random_points(800, 1);
        let tree = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q = Point([
                rng.gen_range(-25.0..25.0),
                rng.gen_range(-25.0..25.0),
                rng.gen_range(-25.0..25.0),
            ]);
            let r = rng.gen_range(0.5..15.0);
            let mut got = tree.within_radius(&q, r);
            got.sort_unstable();
            let mut want: Vec<u32> = (0..pts.len() as u32)
                .filter(|&i| pts[i as usize].dist(&q) <= r)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(tree.count_within_radius(&q, r), want.len());
        }
    }

    #[test]
    fn zero_radius_finds_exact_matches() {
        let pts = vec![
            Point([1.0, 1.0, 1.0]),
            Point([1.0, 1.0, 1.0]),
            Point([2.0, 2.0, 2.0]),
        ];
        let tree = KdTree::build(&pts);
        let mut got = tree.within_radius(&Point([1.0, 1.0, 1.0]), 0.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn radius_covering_everything() {
        let pts = random_points(300, 3);
        let tree = KdTree::build(&pts);
        assert_eq!(tree.within_radius(&pts[0], 1e6).len(), 300);
        assert_eq!(tree.count_within_radius(&pts[0], 1e6), 300);
    }

    #[test]
    fn stab_matches_brute_force_both_predicates() {
        use parclust_geom::dist_sq;
        let pts = random_points(600, 7);
        let tree = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(8);
        // Mixed radii, including never-stabbed sentinels.
        let radii_sq: Vec<f64> = (0..pts.len())
            .map(|i| {
                if i % 13 == 0 {
                    f64::NEG_INFINITY
                } else {
                    let r: f64 = rng.gen_range(0.0..12.0);
                    r * r
                }
            })
            .collect();
        let ann = tree.max_radius_sq_annotation(&radii_sq);
        for _ in 0..40 {
            let q = Point([
                rng.gen_range(-25.0..25.0),
                rng.gen_range(-25.0..25.0),
                rng.gen_range(-25.0..25.0),
            ]);
            for inclusive in [false, true] {
                let mut got = Vec::new();
                tree.stab_radii_into(&q, &radii_sq, &ann, inclusive, &mut got);
                got.sort_unstable();
                let mut want: Vec<u32> = (0..pts.len() as u32)
                    .filter(|&i| {
                        let d = dist_sq(&pts[i as usize], &q);
                        let r = radii_sq[i as usize];
                        if inclusive {
                            d <= r
                        } else {
                            d < r
                        }
                    })
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "inclusive={inclusive}");
            }
        }
    }

    #[test]
    fn stab_strict_vs_inclusive_differ_exactly_on_boundary() {
        // Unit grid: p1 at distance 1 from the query, radius exactly 1.
        let pts = vec![Point([0.0, 0.0, 0.0]), Point([1.0, 0.0, 0.0])];
        let tree = KdTree::build(&pts);
        let radii_sq = vec![0.25, 1.0];
        let ann = tree.max_radius_sq_annotation(&radii_sq);
        let q = Point([0.0, 0.0, 0.0]);
        let mut strict = Vec::new();
        tree.stab_radii_into(&q, &radii_sq, &ann, false, &mut strict);
        strict.sort_unstable();
        // p0: d=0 < 0.25 yes. p1: d_sq=1 < 1 no.
        assert_eq!(strict, vec![0]);
        let mut incl = Vec::new();
        tree.stab_radii_into(&q, &radii_sq, &ann, true, &mut incl);
        incl.sort_unstable();
        assert_eq!(incl, vec![0, 1]);
    }
}
