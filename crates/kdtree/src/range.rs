//! Radius (range) queries.
//!
//! DBSCAN-style algorithms need "all points within distance ε of q"; the
//! kd-tree answers it by pruning subtrees whose bounding boxes are farther
//! than ε. Used by the direct DBSCAN\* implementation that the bench
//! harness contrasts with the one-hierarchy-many-ε HDBSCAN\* workflow the
//! paper advocates. Small undecided subtrees are scanned with the SoA lane
//! kernel rather than descended; the output order is unchanged because both
//! the descent and the batch emit points in ascending permuted order.

use parclust_geom::Point;

use crate::{KdTree, NodeId};

/// Subtrees of at most this many points are resolved with one lane-kernel
/// pass instead of further descent.
const RANGE_BATCH: usize = 16;

impl<const D: usize> KdTree<D> {
    /// Original indices of all points within Euclidean distance `radius`
    /// of `q` (inclusive), in arbitrary order. Includes any tree point
    /// equal to `q`.
    pub fn within_radius(&self, q: &Point<D>, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.within_radius_into(q, radius, &mut out);
        out
    }

    /// [`KdTree::within_radius`] into a reusable buffer (cleared first).
    pub fn within_radius_into(&self, q: &Point<D>, radius: f64, out: &mut Vec<u32>) {
        out.clear();
        assert!(radius >= 0.0 && radius.is_finite());
        let r_sq = radius * radius;
        self.range_recurse(self.root(), q, r_sq, out);
    }

    /// Count of points within `radius` of `q` — enough for core-point
    /// tests, cheaper than materializing ids.
    pub fn count_within_radius(&self, q: &Point<D>, radius: f64) -> usize {
        let r_sq = radius * radius;
        let mut count = 0usize;
        self.range_count_recurse(self.root(), q, r_sq, &mut count);
        count
    }

    fn range_recurse(&self, id: NodeId, q: &Point<D>, r_sq: f64, out: &mut Vec<u32>) {
        if self.bbox(id).dist_sq_to_point(q) > r_sq {
            return;
        }
        let size = self.node_size(id);
        if size <= RANGE_BATCH {
            let start = self.node_start(id) as usize;
            let mut buf = [0.0f64; RANGE_BATCH];
            self.coords().dist_sq_into(q, start, size, &mut buf);
            for (&d_sq, &orig) in buf[..size].iter().zip(&self.idx[start..start + size]) {
                if d_sq <= r_sq {
                    out.push(orig);
                }
            }
            return;
        }
        let (l, r) = self.children(id);
        self.range_recurse(l, q, r_sq, out);
        self.range_recurse(r, q, r_sq, out);
    }

    fn range_count_recurse(&self, id: NodeId, q: &Point<D>, r_sq: f64, count: &mut usize) {
        let bbox = self.bbox(id);
        let d_min = bbox.dist_sq_to_point(q);
        if d_min > r_sq {
            return;
        }
        // Whole-subtree acceptance: the farthest box corner within range.
        let d_max = {
            let mut acc = 0.0;
            for i in 0..D {
                let lo = (q[i] - bbox.lo[i]).abs();
                let hi = (q[i] - bbox.hi[i]).abs();
                let d = lo.max(hi);
                acc += d * d;
            }
            acc
        };
        let size = self.node_size(id);
        if d_max <= r_sq {
            *count += size;
            return;
        }
        if size <= RANGE_BATCH {
            let start = self.node_start(id) as usize;
            let mut buf = [0.0f64; RANGE_BATCH];
            self.coords().dist_sq_into(q, start, size, &mut buf);
            *count += buf[..size].iter().filter(|&&d_sq| d_sq <= r_sq).count();
            return;
        }
        let (l, r) = self.children(id);
        self.range_count_recurse(l, q, r_sq, count);
        self.range_count_recurse(r, q, r_sq, count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn random_points(n: usize, seed: u64) -> Vec<Point<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point([
                    rng.gen_range(-20.0..20.0),
                    rng.gen_range(-20.0..20.0),
                    rng.gen_range(-20.0..20.0),
                ])
            })
            .collect()
    }

    #[test]
    fn matches_brute_force() {
        let pts = random_points(800, 1);
        let tree = KdTree::build(&pts);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q = Point([
                rng.gen_range(-25.0..25.0),
                rng.gen_range(-25.0..25.0),
                rng.gen_range(-25.0..25.0),
            ]);
            let r = rng.gen_range(0.5..15.0);
            let mut got = tree.within_radius(&q, r);
            got.sort_unstable();
            let mut want: Vec<u32> = (0..pts.len() as u32)
                .filter(|&i| pts[i as usize].dist(&q) <= r)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(tree.count_within_radius(&q, r), want.len());
        }
    }

    #[test]
    fn zero_radius_finds_exact_matches() {
        let pts = vec![
            Point([1.0, 1.0, 1.0]),
            Point([1.0, 1.0, 1.0]),
            Point([2.0, 2.0, 2.0]),
        ];
        let tree = KdTree::build(&pts);
        let mut got = tree.within_radius(&Point([1.0, 1.0, 1.0]), 0.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn radius_covering_everything() {
        let pts = random_points(300, 3);
        let tree = KdTree::build(&pts);
        assert_eq!(tree.within_radius(&pts[0], 1e6).len(), 300);
        assert_eq!(tree.count_within_radius(&pts[0], 1e6), 300);
    }
}
