//! The unsafe ledger: every `unsafe` site in the workspace must carry a
//! `// SAFETY:` comment and be accounted for in `UNSAFE_LEDGER.toml`.
//!
//! Sites are grouped by (file, enclosing context, kind) so the ledger
//! stays stable under line churn; only adding/removing/moving unsafe code
//! changes it. `fix_ledger` regenerates the file from the tree, preserving
//! any reviewer `note` fields from the old ledger.

use crate::scan::ScannedFile;
use crate::toml;
use crate::{Violation, LINT_UNSAFE_LEDGER};
use std::collections::BTreeMap;

pub const LEDGER_FILE: &str = "UNSAFE_LEDGER.toml";

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
}

impl UnsafeKind {
    pub fn as_str(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
        }
    }

    pub fn parse(s: &str) -> Option<UnsafeKind> {
        match s {
            "block" => Some(UnsafeKind::Block),
            "fn" => Some(UnsafeKind::Fn),
            "impl" => Some(UnsafeKind::Impl),
            "trait" => Some(UnsafeKind::Trait),
            _ => None,
        }
    }
}

/// One `unsafe` occurrence in the tree.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub line: u32,
    pub kind: UnsafeKind,
    /// Ledger context: the fn/impl/trait itself for declarations, the
    /// enclosing scope for blocks.
    pub context: String,
    pub has_safety_comment: bool,
}

/// One `[[unsafe]]` ledger entry.
#[derive(Debug, Clone)]
pub struct LedgerEntry {
    pub file: String,
    pub context: String,
    pub kind: UnsafeKind,
    pub count: usize,
    pub invariant: String,
    pub note: String,
}

#[derive(Debug, Default)]
pub struct Ledger {
    pub entries: Vec<LedgerEntry>,
}

impl Ledger {
    pub fn parse(src: &str) -> Result<Ledger, String> {
        let doc = toml::parse(src).map_err(|e| e.to_string())?;
        let mut entries = Vec::new();
        for t in doc.arrays.get("unsafe").into_iter().flatten() {
            let file = t
                .get_str("file")
                .ok_or("ledger entry missing `file`")?
                .to_string();
            let context = t
                .get_str("context")
                .ok_or("ledger entry missing `context`")?
                .to_string();
            let kind_str = t.get_str("kind").ok_or("ledger entry missing `kind`")?;
            let kind = UnsafeKind::parse(kind_str)
                .ok_or_else(|| format!("unknown unsafe kind {kind_str:?}"))?;
            let count = t
                .get("count")
                .and_then(toml::Value::as_int)
                .ok_or("ledger entry missing `count`")? as usize;
            let invariant = t.get_str("invariant").unwrap_or("").to_string();
            let note = t.get_str("note").unwrap_or("").to_string();
            entries.push(LedgerEntry {
                file,
                context,
                kind,
                count,
                invariant,
                note,
            });
        }
        Ok(Ledger { entries })
    }
}

/// Find every non-test `unsafe` site in `f`.
pub fn find_unsafe_sites(f: &ScannedFile) -> Vec<UnsafeSite> {
    let toks = &f.toks;
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut sites = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if !t.is_ident("unsafe") || f.in_test_code(t.line) {
            continue;
        }
        let next = code.get(k + 1).map(|&j| &toks[j]);
        let next2 = code.get(k + 2).map(|&j| &toks[j]);
        let (kind, context) = match next {
            Some(n) if n.is_punct('{') => (UnsafeKind::Block, f.scope_name(i).to_string()),
            Some(n) if n.is_ident("fn") => {
                // `unsafe fn name(...)` declares; `unsafe fn(...)` is a
                // pointer type, not a site.
                match next2 {
                    Some(name) if name.kind == crate::lexer::TokKind::Ident => {
                        (UnsafeKind::Fn, name.text.clone())
                    }
                    _ => continue,
                }
            }
            Some(n) if n.is_ident("impl") || n.is_ident("trait") => {
                let kind = if n.is_ident("impl") {
                    UnsafeKind::Impl
                } else {
                    UnsafeKind::Trait
                };
                // Header text up to the body, same compression as scope
                // names: `unsafe impl Send for Registry` → "impl Send for
                // Registry".
                let mut name = n.text.clone();
                for &j in code.iter().skip(k + 2).take(24) {
                    let h = &toks[j];
                    if h.is_punct('{') || h.is_punct(';') {
                        break;
                    }
                    if h.is_punct('<') || h.is_punct('>') || h.is_punct(':') {
                        continue;
                    }
                    name.push(' ');
                    name.push_str(&h.text);
                }
                (kind, name)
            }
            _ => continue,
        };
        let has_safety_comment = f.comment_block_above_contains(t.line, &["SAFETY", "# Safety"]);
        sites.push(UnsafeSite {
            line: t.line,
            kind,
            context,
            has_safety_comment,
        });
    }
    sites
}

type GroupKey = (String, String, UnsafeKind);

fn group_sites(files: &[ScannedFile]) -> BTreeMap<GroupKey, Vec<UnsafeSite>> {
    let mut groups: BTreeMap<GroupKey, Vec<UnsafeSite>> = BTreeMap::new();
    for f in files {
        for site in find_unsafe_sites(f) {
            groups
                .entry((f.rel_path.clone(), site.context.clone(), site.kind))
                .or_default()
                .push(site);
        }
    }
    groups
}

/// Check every unsafe site against SAFETY-comment and ledger requirements.
/// Returns the total number of unsafe sites found.
pub fn check_unsafe(
    files: &[ScannedFile],
    ledger: &Ledger,
    violations: &mut Vec<Violation>,
) -> usize {
    let groups = group_sites(files);
    let total: usize = groups.values().map(Vec::len).sum();

    for ((file, context, kind), sites) in &groups {
        for site in sites {
            if !site.has_safety_comment {
                violations.push(Violation {
                    lint: LINT_UNSAFE_LEDGER,
                    file: file.clone(),
                    line: site.line,
                    message: format!(
                        "unsafe {} in `{}` has no `// SAFETY:` comment",
                        kind.as_str(),
                        context
                    ),
                });
            }
        }
    }

    // Diff tree vs ledger on the grouped keys.
    let mut ledger_keys: BTreeMap<GroupKey, &LedgerEntry> = BTreeMap::new();
    for e in &ledger.entries {
        ledger_keys.insert((e.file.clone(), e.context.clone(), e.kind), e);
    }
    for (key, sites) in &groups {
        let first_line = sites.first().map(|s| s.line).unwrap_or(0);
        match ledger_keys.get(key) {
            None => violations.push(Violation {
                lint: LINT_UNSAFE_LEDGER,
                file: key.0.clone(),
                line: first_line,
                message: format!(
                    "+ unsafe {} in `{}` is not in {LEDGER_FILE} (run `analyze fix-ledger`)",
                    key.2.as_str(),
                    key.1
                ),
            }),
            Some(e) if e.count != sites.len() => violations.push(Violation {
                lint: LINT_UNSAFE_LEDGER,
                file: key.0.clone(),
                line: first_line,
                message: format!(
                    "~ unsafe {} in `{}`: tree has {} site(s), {LEDGER_FILE} records {}",
                    key.2.as_str(),
                    key.1,
                    sites.len(),
                    e.count
                ),
            }),
            Some(e) if e.invariant.trim().is_empty() => violations.push(Violation {
                lint: LINT_UNSAFE_LEDGER,
                file: LEDGER_FILE.to_string(),
                line: 0,
                message: format!(
                    "entry for {} `{}` ({}) has an empty invariant",
                    key.0,
                    key.1,
                    key.2.as_str()
                ),
            }),
            Some(_) => {}
        }
    }
    for key in ledger_keys.keys() {
        if !groups.contains_key(key) {
            violations.push(Violation {
                lint: LINT_UNSAFE_LEDGER,
                file: LEDGER_FILE.to_string(),
                line: 0,
                message: format!(
                    "- stale entry: {} `{}` ({}) no longer exists in the tree",
                    key.0,
                    key.1,
                    key.2.as_str()
                ),
            });
        }
    }
    total
}

/// Regenerate the ledger from the tree. Invariants are auto-extracted from
/// the first SAFETY comment of each group; `note` fields carry over from
/// `old` entries with the same key.
pub fn fix_ledger(files: &[ScannedFile], old: &Ledger) -> String {
    let groups = group_sites(files);
    let mut notes: BTreeMap<GroupKey, &str> = BTreeMap::new();
    for e in &old.entries {
        if !e.note.is_empty() {
            notes.insert((e.file.clone(), e.context.clone(), e.kind), &e.note);
        }
    }
    let by_path: BTreeMap<&str, &ScannedFile> =
        files.iter().map(|f| (f.rel_path.as_str(), f)).collect();

    let mut out = String::new();
    out.push_str(
        "# Audit ledger for every `unsafe` site in the workspace.\n\
         # Maintained by `cargo run -p parclust-analyze -- fix-ledger`; checked by\n\
         # `... -- check`. `invariant` is extracted from the site's SAFETY comment;\n\
         # `note` is free-form reviewer text and survives regeneration.\n",
    );
    for ((file, context, kind), sites) in &groups {
        let invariant = by_path
            .get(file.as_str())
            .and_then(|f| sites.first().map(|s| extract_invariant(f, s.line)))
            .unwrap_or_default();
        out.push_str("\n[[unsafe]]\n");
        out.push_str(&format!("file = {}\n", toml::escape(file)));
        out.push_str(&format!("context = {}\n", toml::escape(context)));
        out.push_str(&format!("kind = \"{}\"\n", kind.as_str()));
        out.push_str(&format!("count = {}\n", sites.len()));
        out.push_str(&format!("invariant = {}\n", toml::escape(&invariant)));
        if let Some(note) = notes.get(&(file.clone(), context.clone(), *kind)) {
            out.push_str(&format!("note = {}\n", toml::escape(note)));
        }
    }
    out
}

/// Pull the human-written invariant out of the SAFETY comment governing
/// the site at `lineno`: the text after `SAFETY:` plus any continuation
/// comment lines, clipped to ~160 chars.
fn extract_invariant(f: &ScannedFile, lineno: u32) -> String {
    // Collected top-down: the comment block above the site, then any
    // trailing comment on the site line itself.
    let mut block: Vec<String> = Vec::new();
    let mut l = lineno.saturating_sub(1);
    while l >= 1 {
        let text = f.line(l).trim();
        let is_comment = text.starts_with("//")
            || text.starts_with("/*")
            || text.starts_with('*')
            || text.starts_with("#[")
            || text.starts_with("#![");
        if !is_comment {
            // Statement continuations (`let x: T =` on the line above an
            // unsafe expression) keep the walk alive, mirroring the SAFETY
            // detection in `scan::comment_block_above_contains`.
            let continues = !text.is_empty()
                && !text.ends_with(';')
                && !text.ends_with('{')
                && !text.ends_with('}');
            if continues {
                l -= 1;
                continue;
            }
            break;
        }
        block.push(text.to_string());
        l -= 1;
    }
    block.reverse();
    if let Some(i) = f.line(lineno).find("//") {
        block.push(f.line(lineno)[i..].trim().to_string());
    }

    let start = block
        .iter()
        .position(|t| t.contains("SAFETY") || t.contains("# Safety"));
    let Some(start) = start else {
        return String::new();
    };
    let mut invariant = String::new();
    for (j, raw) in block[start..].iter().enumerate() {
        let mut text = raw
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim();
        if j == 0 {
            if let Some(at) = text.find("SAFETY") {
                text = text[at + "SAFETY".len()..].trim_start_matches(':').trim();
            } else if let Some(at) = text.find("# Safety") {
                // Doc-style `# Safety` heading: the invariant is the prose on
                // the following comment lines.
                text = text[at + "# Safety".len()..].trim();
            }
        } else if !raw.starts_with("//") && !raw.starts_with('*') {
            break; // attributes end the prose
        }
        if !invariant.is_empty() {
            invariant.push(' ');
        }
        invariant.push_str(text);
        if invariant.len() >= 160 {
            invariant.truncate(160);
            break;
        }
    }
    invariant.trim_end_matches("*/").trim().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanned(src: &str) -> ScannedFile {
        ScannedFile::new("crates/x/src/lib.rs".into(), src)
    }

    #[test]
    fn finds_blocks_fns_impls() {
        let f = scanned(
            "// SAFETY: ptr is valid for the whole call\n\
             unsafe fn raw(p: *const u8) { unsafe { p.read() }; }\n\
             // SAFETY: no shared mutation\n\
             unsafe impl Send for Foo {}\n",
        );
        let sites = find_unsafe_sites(&f);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].kind, UnsafeKind::Fn);
        assert_eq!(sites[0].context, "raw");
        assert_eq!(sites[1].kind, UnsafeKind::Block);
        assert_eq!(sites[1].context, "raw");
        assert_eq!(sites[2].kind, UnsafeKind::Impl);
        assert_eq!(sites[2].context, "impl Send for Foo");
        // The block inherits the fn's comment block? No — its governing
        // comment is the fn header line, which does contain SAFETY via the
        // trailing-comment walk only if on the same/previous line. Here the
        // block sits on the same line as the fn, whose previous line is the
        // SAFETY comment, so all three sites resolve a comment.
        assert!(sites.iter().all(|s| s.has_safety_comment));
    }

    #[test]
    fn fn_pointer_type_is_not_a_site() {
        let f = scanned("struct J { run: unsafe fn(*const ()) }\n");
        assert!(find_unsafe_sites(&f).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let f = scanned("#[cfg(test)]\nmod tests {\n fn t() { unsafe { x() } }\n}\n");
        assert!(find_unsafe_sites(&f).is_empty());
    }

    #[test]
    fn missing_safety_comment_flagged() {
        let f = scanned("fn go() {\n    unsafe { hit() };\n}\n");
        let sites = find_unsafe_sites(&f);
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].has_safety_comment);
        let mut v = Vec::new();
        check_unsafe(&[f], &Ledger::default(), &mut v);
        // one for the missing comment, one for the missing ledger entry
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("no `// SAFETY:`"));
        assert!(v[1].message.contains("not in UNSAFE_LEDGER.toml"));
    }

    #[test]
    fn ledger_roundtrip_is_clean_and_preserves_notes() {
        let f = scanned(
            "fn go() {\n    // SAFETY: index is bounds-checked above\n    unsafe { hit() };\n}\n",
        );
        let files = vec![f];
        let old = Ledger::parse(
            "[[unsafe]]\nfile = \"crates/x/src/lib.rs\"\ncontext = \"go\"\nkind = \"block\"\ncount = 1\ninvariant = \"old\"\nnote = \"reviewed 2024-11\"\n",
        )
        .expect("parses");
        let regenerated = fix_ledger(&files, &old);
        assert!(regenerated.contains("invariant = \"index is bounds-checked above\""));
        assert!(regenerated.contains("note = \"reviewed 2024-11\""));
        let ledger = Ledger::parse(&regenerated).expect("regenerated parses");
        let mut v = Vec::new();
        let n = check_unsafe(&files, &ledger, &mut v);
        assert_eq!(n, 1);
        assert!(v.is_empty(), "unexpected violations: {v:?}");
    }

    #[test]
    fn stale_and_count_mismatch_reported() {
        let f = scanned(
            "fn go() {\n    // SAFETY: fine\n    unsafe { a() };\n    // SAFETY: fine\n    unsafe { b() };\n}\n",
        );
        let ledger = Ledger::parse(
            "[[unsafe]]\nfile = \"crates/x/src/lib.rs\"\ncontext = \"go\"\nkind = \"block\"\ncount = 1\ninvariant = \"x\"\n\n\
             [[unsafe]]\nfile = \"crates/gone/src/lib.rs\"\ncontext = \"dead\"\nkind = \"fn\"\ncount = 1\ninvariant = \"x\"\n",
        )
        .expect("parses");
        let mut v = Vec::new();
        check_unsafe(&[f], &ledger, &mut v);
        assert!(v.iter().any(|x| x.message.contains("tree has 2 site(s)")));
        assert!(v.iter().any(|x| x.message.starts_with("- stale entry")));
    }
}
