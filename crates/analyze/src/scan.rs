//! File-level analysis context shared by all lints: the token stream, raw
//! lines, `#[cfg(test)]` region map, enclosing-scope names, and the
//! `// analyze:allow(...)` escape-hatch index.

use crate::lexer::{lex, Tok, TokKind};

/// A source file prepared for linting.
pub struct ScannedFile {
    /// Workspace-relative path with `/` separators (manifest key).
    pub rel_path: String,
    /// Raw source lines (1-based access via helpers).
    pub lines: Vec<String>,
    /// Lexed tokens.
    pub toks: Vec<Tok>,
    /// Inclusive 1-based line spans covered by `#[cfg(test)]` items.
    pub test_spans: Vec<(u32, u32)>,
    /// For each token index, the innermost named scope (fn/impl/mod) it
    /// sits in, as an index into `scopes` (`u32::MAX` = top level).
    pub tok_scope: Vec<u32>,
    /// Scope display names, e.g. `load_slow` or `impl Send for Registry`.
    pub scopes: Vec<String>,
    /// Parsed `analyze:allow` comments: (line, lints, reason).
    pub allows: Vec<AllowComment>,
}

/// One `// analyze:allow(lint-a, lint-b) — reason` comment.
#[derive(Debug, Clone)]
pub struct AllowComment {
    pub line: u32,
    pub lints: Vec<String>,
    pub reason: String,
}

impl ScannedFile {
    pub fn new(rel_path: String, src: &str) -> ScannedFile {
        let toks = lex(src);
        let lines: Vec<String> = src.lines().map(str::to_string).collect();
        let test_spans = find_test_spans(&toks);
        let (tok_scope, scopes) = assign_scopes(&toks);
        let allows = find_allows(&toks);
        ScannedFile {
            rel_path,
            lines,
            toks,
            test_spans,
            tok_scope,
            scopes,
            allows,
        }
    }

    pub fn line(&self, lineno: u32) -> &str {
        self.lines
            .get(lineno.saturating_sub(1) as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    pub fn in_test_code(&self, lineno: u32) -> bool {
        self.test_spans
            .iter()
            .any(|&(lo, hi)| lo <= lineno && lineno <= hi)
    }

    /// Innermost scope name for the token at `idx`, or `"top-level"`.
    pub fn scope_name(&self, idx: usize) -> &str {
        match self.tok_scope.get(idx) {
            Some(&s) if s != u32::MAX => &self.scopes[s as usize],
            _ => "top-level",
        }
    }

    /// The `analyze:allow` comment governing `lineno`, if any: a trailing
    /// comment on the line itself or a comment on the line directly above.
    pub fn allow_for(&self, lineno: u32, lint: &str) -> Option<&AllowComment> {
        self.allows.iter().find(|a| {
            (a.line == lineno || a.line + 1 == lineno) && a.lints.iter().any(|l| l == lint)
        })
    }

    /// Walk the contiguous comment/attribute block directly above `lineno`
    /// (1-based) and report whether any of it contains `needle`.
    pub fn comment_block_above_contains(&self, lineno: u32, needles: &[&str]) -> bool {
        // Trailing comment on the line itself also counts.
        if let Some(comment) = trailing_comment(self.line(lineno)) {
            if needles.iter().any(|n| comment.contains(n)) {
                return true;
            }
        }
        let mut l = lineno.saturating_sub(1);
        while l >= 1 {
            let text = self.line(l).trim();
            if text.starts_with("//") {
                if needles.iter().any(|n| text.contains(n)) {
                    return true;
                }
            } else if text.starts_with("#[") || text.starts_with("#![") {
                // Attributes between the comment and the item are fine.
            } else if text.starts_with("*/") || text.starts_with('*') || text.starts_with("/*") {
                // Block-comment body/edges.
                if needles.iter().any(|n| text.contains(n)) {
                    return true;
                }
            } else if text.ends_with(';') || text.ends_with('{') || text.ends_with('}') {
                // A completed statement/item ends the walk; a governing
                // comment cannot sit above someone else's code.
                return false;
            }
            // Otherwise the line continues the same statement
            // (`let x =` + newline + `unsafe { ... }`): keep walking.
            l -= 1;
        }
        false
    }
}

/// The comment part of a line of code, if the line ends in one. A lexer
/// pass would be more precise, but `//` inside string literals is the only
/// false positive and the needles (`SAFETY`, `analyze:allow`) do not occur
/// in string literals in this workspace.
fn trailing_comment(line: &str) -> Option<&str> {
    line.find("//").map(|i| &line[i..])
}

/// Find `#[cfg(test)]` items and return their line spans. Handles the
/// attribute followed by further attributes, then either a braced item
/// (span runs to the matching close brace) or a `;`-terminated one.
fn find_test_spans(toks: &[Tok]) -> Vec<(u32, u32)> {
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let at = |k: usize| code.get(k).map(|&i| &toks[i]);
    let mut spans = Vec::new();
    let mut k = 0;
    while k < code.len() {
        // Match `# [ cfg ( test ) ]` exactly.
        let is_cfg_test = at(k).is_some_and(|t| t.is_punct('#'))
            && at(k + 1).is_some_and(|t| t.is_punct('['))
            && at(k + 2).is_some_and(|t| t.is_ident("cfg"))
            && at(k + 3).is_some_and(|t| t.is_punct('('))
            && at(k + 4).is_some_and(|t| t.is_ident("test"))
            && at(k + 5).is_some_and(|t| t.is_punct(')'))
            && at(k + 6).is_some_and(|t| t.is_punct(']'));
        if !is_cfg_test {
            k += 1;
            continue;
        }
        let start_line = at(k).map(|t| t.line).unwrap_or(1);
        let mut j = k + 7;
        // Skip any further attributes.
        while at(j).is_some_and(|t| t.is_punct('#')) && at(j + 1).is_some_and(|t| t.is_punct('[')) {
            let mut depth = 0usize;
            j += 1; // at '['
            loop {
                match at(j) {
                    Some(t) if t.is_punct('[') => depth += 1,
                    Some(t) if t.is_punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    Some(_) => {}
                    None => return spans,
                }
                j += 1;
            }
        }
        // Scan to the item end: the matching `}` of the first top-level
        // brace, or a `;` before any brace opens.
        let mut depth = 0usize;
        let end_line;
        loop {
            match at(j) {
                Some(t) if t.is_punct('{') => depth += 1,
                Some(t) if t.is_punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = t.line;
                        break;
                    }
                }
                Some(t) if t.is_punct(';') && depth == 0 => {
                    end_line = t.line;
                    break;
                }
                Some(_) => {}
                None => {
                    end_line = toks.last().map(|t| t.line).unwrap_or(start_line);
                    break;
                }
            }
            j += 1;
        }
        spans.push((start_line, end_line));
        k = j + 1;
    }
    spans
}

/// Assign each token the innermost enclosing named scope (fn, impl, mod,
/// trait). Heuristic but robust for rustfmt'd code: a scope header's name
/// binds to the next `{` at parenthesis depth 0.
fn assign_scopes(toks: &[Tok]) -> (Vec<u32>, Vec<String>) {
    #[derive(Clone)]
    struct Open {
        name_idx: u32,
        close_depth: usize,
    }
    let mut scopes: Vec<String> = Vec::new();
    let mut stack: Vec<Open> = Vec::new();
    let mut tok_scope = vec![u32::MAX; toks.len()];
    let mut pending: Option<String> = None;
    let mut paren_depth = 0usize;
    let mut brace_depth = 0usize;

    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        tok_scope[i] = stack.last().map(|o| o.name_idx).unwrap_or(u32::MAX);
        match t.kind {
            TokKind::Ident => {
                let next = code.get(k + 1).map(|&j| &toks[j]);
                match t.text.as_str() {
                    "fn" => {
                        // `fn name` is a declaration; `fn (` is a pointer type.
                        if let Some(n) = next.filter(|n| n.kind == TokKind::Ident) {
                            pending = Some(n.text.clone());
                        }
                    }
                    "mod" | "trait" => {
                        if let Some(n) = next.filter(|n| n.kind == TokKind::Ident) {
                            pending = Some(format!("{} {}", t.text, n.text));
                        }
                    }
                    "impl" => {
                        // Only item-position `impl` opens a scope —
                        // `-> impl Trait` / `arg: impl Fn()` do not.
                        let prev = k
                            .checked_sub(1)
                            .and_then(|p| code.get(p))
                            .map(|&j| &toks[j]);
                        let item_position = match prev {
                            None => true,
                            Some(p) => {
                                p.is_punct(';')
                                    || p.is_punct('{')
                                    || p.is_punct('}')
                                    || p.is_punct(']')
                                    || p.is_punct(')')
                                    || p.is_ident("unsafe")
                                    || p.is_ident("pub")
                            }
                        };
                        if !item_position {
                            continue;
                        }
                        // Header text up to the body/terminator, compressed.
                        let mut name = String::from("impl");
                        for &j in code.iter().skip(k + 1).take(24) {
                            let h = &toks[j];
                            if h.is_punct('{') || h.is_punct(';') {
                                break;
                            }
                            if h.is_punct('<') || h.is_punct('>') || h.is_punct(':') {
                                continue;
                            }
                            name.push(' ');
                            name.push_str(&h.text);
                        }
                        pending = Some(name);
                    }
                    _ => {}
                }
            }
            TokKind::Punct => match t.text.as_bytes()[0] {
                b'(' => paren_depth += 1,
                b')' => paren_depth = paren_depth.saturating_sub(1),
                b'{' => {
                    brace_depth += 1;
                    if paren_depth == 0 {
                        if let Some(name) = pending.take() {
                            scopes.push(name);
                            stack.push(Open {
                                name_idx: (scopes.len() - 1) as u32,
                                close_depth: brace_depth,
                            });
                        }
                    }
                }
                b'}' => {
                    if stack.last().is_some_and(|o| o.close_depth == brace_depth) {
                        stack.pop();
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                }
                b';' if paren_depth == 0 => {
                    pending = None; // bodyless declaration
                }
                _ => {}
            },
            _ => {}
        }
    }
    (tok_scope, scopes)
}

/// Parse every `analyze:allow(lint, ...)` comment in the token stream.
/// The reason is whatever follows the closing parenthesis, stripped of
/// separator dashes.
fn find_allows(toks: &[Tok]) -> Vec<AllowComment> {
    let mut out = Vec::new();
    for t in toks {
        if !t.is_comment() {
            continue;
        }
        // The directive must lead the comment ( `// analyze:allow(...)` );
        // prose that merely mentions it does not bind.
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches(['!', '*'])
            .trim_start();
        let Some(after) = body.strip_prefix("analyze:allow(") else {
            continue;
        };
        let Some(close) = after.find(')') else {
            out.push(AllowComment {
                line: t.line,
                lints: Vec::new(),
                reason: String::new(),
            });
            continue;
        };
        let lints: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let reason = after[close + 1..]
            .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
            .trim()
            .to_string();
        out.push(AllowComment {
            line: t.line,
            lints,
            reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = ScannedFile::new("x.rs".into(), src);
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn scope_names_resolve() {
        let src = "impl Foo for Bar { fn run(&self) { let x = 1; } }\nfn free() { body(); }\n";
        let f = ScannedFile::new("x.rs".into(), src);
        let x_idx = f.toks.iter().position(|t| t.is_ident("x")).expect("x");
        assert_eq!(f.scope_name(x_idx), "run");
        let body_idx = f
            .toks
            .iter()
            .position(|t| t.is_ident("body"))
            .expect("body");
        assert_eq!(f.scope_name(body_idx), "free");
    }

    #[test]
    fn fn_pointer_type_is_not_a_scope() {
        let src = "struct J { run: unsafe fn(*const ()) }\nfn real() { tag(); }\n";
        let f = ScannedFile::new("x.rs".into(), src);
        let tag_idx = f.toks.iter().position(|t| t.is_ident("tag")).expect("tag");
        assert_eq!(f.scope_name(tag_idx), "real");
    }

    #[test]
    fn comment_links_across_statement_continuations() {
        let src = "fn f() {\n    done();\n    // SAFETY: layout matches\n    let x: &[u8] =\n        unsafe { cast(p) };\n}\n";
        let f = ScannedFile::new("x.rs".into(), src);
        assert!(f.comment_block_above_contains(5, &["SAFETY"]));
        // ...but a terminated statement blocks the link.
        let src2 = "// SAFETY: someone else's\nlet a = 1;\nlet b = unsafe { go() };\n";
        let f2 = ScannedFile::new("x.rs".into(), src2);
        assert!(!f2.comment_block_above_contains(3, &["SAFETY"]));
    }

    #[test]
    fn allows_parse_with_reasons() {
        let src = "// analyze:allow(hotpath-lock, hotpath-unwrap) — writer side only\nlet g = m.lock().unwrap();\nlet h = q.pop(); // analyze:allow(hotpath-unwrap)\n";
        let f = ScannedFile::new("x.rs".into(), src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].lints, vec!["hotpath-lock", "hotpath-unwrap"]);
        assert_eq!(f.allows[0].reason, "writer side only");
        assert!(f.allows[1].reason.is_empty());
        assert!(f.allow_for(2, "hotpath-lock").is_some());
        assert!(f.allow_for(2, "hotpath-alloc-in-loop").is_none());
    }
}
