//! parclust-analyze: workspace static analysis.
//!
//! Three lints run over every `src/**/*.rs` under `crates/` and `shims/`
//! (test code — crate `tests/` dirs, `benches/`, and `#[cfg(test)]` items —
//! is exempt):
//!
//! * **unsafe-ledger** — every `unsafe` block/fn/impl/trait must carry a
//!   `// SAFETY:` comment (or `# Safety` doc section) and be accounted for
//!   in `UNSAFE_LEDGER.toml`; drift produces a diff-style report and
//!   `fix-ledger` regenerates the file, preserving reviewer notes.
//! * **atomics-discipline** — every `Ordering::*` use must match the
//!   per-file manifest in `ANALYZE.toml`: the variant must be listed in
//!   `allow`, except `Relaxed` which is granted per named receiver via
//!   `relaxed = [...]`. Files using atomics without a manifest entry fail.
//! * **hot-path-hygiene** — files tagged hot in `ANALYZE.toml` reject
//!   mutex construction/locking, `.unwrap()`/`.expect(`, and allocation
//!   inside loops, unless an inline
//!   `// analyze:allow(<lint>) — reason` grants an exemption (the reason is
//!   mandatory; a bare allow is itself a violation).
//!
//! The library is filesystem-agnostic: lints run over in-memory
//! [`scan::ScannedFile`]s so tests can feed fixtures, and the `analyze`
//! binary feeds it the real tree.

pub mod atomics;
pub mod hotpath;
pub mod ledger;
pub mod lexer;
pub mod scan;
pub mod toml;

use scan::ScannedFile;
use std::path::{Path, PathBuf};

/// Lint identifiers, as they appear in reports and `analyze:allow(...)`.
pub const LINT_UNSAFE_LEDGER: &str = "unsafe-ledger";
pub const LINT_ATOMICS: &str = "atomics-discipline";
pub const LINT_HOTPATH_LOCK: &str = "hotpath-lock";
pub const LINT_HOTPATH_UNWRAP: &str = "hotpath-unwrap";
pub const LINT_HOTPATH_ALLOC: &str = "hotpath-alloc-in-loop";
pub const LINT_ALLOW_HYGIENE: &str = "allow-hygiene";

/// Every valid lint name (allow comments naming anything else are typos
/// and flagged by allow-hygiene).
pub const ALL_LINTS: &[&str] = &[
    LINT_UNSAFE_LEDGER,
    LINT_ATOMICS,
    LINT_HOTPATH_LOCK,
    LINT_HOTPATH_UNWRAP,
    LINT_HOTPATH_ALLOC,
    LINT_ALLOW_HYGIENE,
];

/// One finding. `file:line` point at the offending token (or ledger
/// entry); `message` is human-readable and stable enough to grep.
#[derive(Debug, Clone)]
pub struct Violation {
    pub lint: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Aggregate result of a full `check` run.
pub struct Report {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    pub unsafe_sites: usize,
    pub atomics_sites: usize,
    pub allows_used: usize,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Machine-readable JSON document (the `--json` output).
    pub fn to_json(&self) -> serde_json::Value {
        let violations: Vec<serde_json::Value> = self
            .violations
            .iter()
            .map(|v| {
                serde_json::json!({
                    "lint": v.lint,
                    "file": v.file.clone(),
                    "line": v.line as u64,
                    "message": v.message.clone(),
                })
            })
            .collect();
        serde_json::json!({
            "ok": self.ok(),
            "files_scanned": self.files_scanned as u64,
            "unsafe_sites": self.unsafe_sites as u64,
            "atomics_sites": self.atomics_sites as u64,
            "allows_used": self.allows_used as u64,
            "violations": serde_json::Value::Array(violations),
        })
    }
}

/// The parsed `ANALYZE.toml` manifest.
pub struct Manifest {
    pub hot_files: Vec<String>,
    pub atomics: Vec<atomics::FilePolicy>,
}

impl Manifest {
    pub fn parse(src: &str) -> Result<Manifest, String> {
        let doc = toml::parse(src).map_err(|e| e.to_string())?;
        let hot_files = doc
            .tables
            .get("hotpath")
            .and_then(|t| t.get("files"))
            .and_then(|v| v.as_str_array())
            .map(|v| v.iter().map(|s| s.to_string()).collect())
            .unwrap_or_default();
        let mut atomics_policies = Vec::new();
        for entry in doc.arrays.get("atomics").into_iter().flatten() {
            let file = entry
                .get_str("file")
                .ok_or("atomics entry missing `file`")?
                .to_string();
            let allow = entry
                .get("allow")
                .and_then(|v| v.as_str_array())
                .map(|v| v.iter().map(|s| s.to_string()).collect())
                .unwrap_or_default();
            let relaxed = entry
                .get("relaxed")
                .and_then(|v| v.as_str_array())
                .map(|v| v.iter().map(|s| s.to_string()).collect())
                .unwrap_or_default();
            atomics_policies.push(atomics::FilePolicy {
                file,
                allow,
                relaxed,
            });
        }
        Ok(Manifest {
            hot_files,
            atomics: atomics_policies,
        })
    }
}

/// Run every lint over `files` with `manifest` and `ledger`.
pub fn check(files: &[ScannedFile], manifest: &Manifest, ledger: &ledger::Ledger) -> Report {
    let mut violations = Vec::new();
    let unsafe_summary = ledger::check_unsafe(files, ledger, &mut violations);
    let atomics_sites = atomics::check_atomics(files, &manifest.atomics, &mut violations);
    hotpath::check_hotpath(files, &manifest.hot_files, &mut violations);
    let allows_used = check_allow_hygiene(files, &mut violations);
    violations
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Report {
        violations,
        files_scanned: files.len(),
        unsafe_sites: unsafe_summary,
        atomics_sites,
        allows_used,
    }
}

/// The escape hatch polices itself: every `analyze:allow` must name known
/// lints and carry a non-empty reason.
fn check_allow_hygiene(files: &[ScannedFile], violations: &mut Vec<Violation>) -> usize {
    let mut used = 0usize;
    for f in files {
        for a in &f.allows {
            used += 1;
            if a.lints.is_empty() {
                violations.push(Violation {
                    lint: LINT_ALLOW_HYGIENE,
                    file: f.rel_path.clone(),
                    line: a.line,
                    message: "analyze:allow must name at least one lint".into(),
                });
                continue;
            }
            for l in &a.lints {
                if !ALL_LINTS.contains(&l.as_str()) {
                    violations.push(Violation {
                        lint: LINT_ALLOW_HYGIENE,
                        file: f.rel_path.clone(),
                        line: a.line,
                        message: format!("unknown lint {l:?} in analyze:allow"),
                    });
                }
            }
            if a.reason.len() < 8 {
                violations.push(Violation {
                    lint: LINT_ALLOW_HYGIENE,
                    file: f.rel_path.clone(),
                    line: a.line,
                    message:
                        "analyze:allow needs a reason: `// analyze:allow(<lint>) — why this is sound`"
                            .into(),
                });
            }
        }
    }
    used
}

/// Locate the workspace root: the nearest ancestor of `start` holding
/// `ANALYZE.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("ANALYZE.toml").is_file() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect and scan every lintable source file under `root`: `src/**/*.rs`
/// below `crates/` and `shims/`. Paths are workspace-relative with `/`
/// separators, sorted for deterministic reports.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<ScannedFile>> {
    let mut paths = Vec::new();
    for top in ["crates", "shims"] {
        let top_dir = root.join(top);
        if !top_dir.is_dir() {
            continue;
        }
        for member in std::fs::read_dir(&top_dir)? {
            let member = member?.path();
            let src_dir = member.join("src");
            if src_dir.is_dir() {
                collect_rs(&src_dir, &mut paths)?;
            }
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for p in paths {
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(&p)?;
        files.push(ScannedFile::new(rel, &src));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
