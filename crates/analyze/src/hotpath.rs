//! Hot-path hygiene: files on the serving/scheduling fast path must not
//! block, panic, or allocate per iteration.
//!
//! Three sublints over the files listed in `[hotpath] files` in
//! `ANALYZE.toml`:
//!
//! * `hotpath-lock` — `Mutex::`/`RwLock::` construction and `.lock(` calls
//! * `hotpath-unwrap` — `.unwrap(` / `.expect(`
//! * `hotpath-alloc-in-loop` — `vec!`/`format!`/`json!`,
//!   `Vec::new`-style constructors, and `.to_string(`/`.to_vec(`/
//!   `.to_owned(` inside `for`/`while`/`loop` bodies
//!
//! Intentional slow paths opt out per line with
//! `// analyze:allow(<lint>) — reason`; the reason is required
//! (allow-hygiene enforces it).

use crate::lexer::{Tok, TokKind};
use crate::scan::ScannedFile;
use crate::{Violation, LINT_HOTPATH_ALLOC, LINT_HOTPATH_LOCK, LINT_HOTPATH_UNWRAP};
use std::collections::BTreeSet;

pub fn check_hotpath(files: &[ScannedFile], hot_files: &[String], violations: &mut Vec<Violation>) {
    for f in files {
        if hot_files.iter().any(|h| h == &f.rel_path) {
            check_file(f, violations);
        }
    }
}

fn check_file(f: &ScannedFile, violations: &mut Vec<Violation>) {
    let toks = &f.toks;
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let in_loop = loop_mask(toks, &code);
    let at = |k: usize| -> Option<&Tok> { code.get(k).map(|&i| &toks[i]) };

    let mut seen: BTreeSet<(&'static str, u32)> = BTreeSet::new();
    let mut report = |lint: &'static str, line: u32, message: String| {
        if f.in_test_code(line) || f.allow_for(line, lint).is_some() {
            return;
        }
        if seen.insert((lint, line)) {
            violations.push(Violation {
                lint,
                file: f.rel_path.clone(),
                line,
                message,
            });
        }
    };

    for k in 0..code.len() {
        let t = at(k).expect("index in range");
        let line = t.line;
        match t.kind {
            TokKind::Ident => {
                let next = at(k + 1);
                match t.text.as_str() {
                    "Mutex" | "RwLock"
                        if next.is_some_and(|n| n.is_punct(':'))
                            && at(k + 2).is_some_and(|n| n.is_punct(':')) =>
                    {
                        report(
                            LINT_HOTPATH_LOCK,
                            line,
                            format!("{} construction on the hot path", t.text),
                        );
                    }
                    "vec" | "format" | "json"
                        if in_loop[k] && next.is_some_and(|n| n.is_punct('!')) =>
                    {
                        report(
                            LINT_HOTPATH_ALLOC,
                            line,
                            format!("{}! allocates inside a loop", t.text),
                        );
                    }
                    "Vec" | "String" | "Box" | "HashMap" | "BTreeMap" | "VecDeque"
                        if in_loop[k]
                            && next.is_some_and(|n| n.is_punct(':'))
                            && at(k + 2).is_some_and(|n| n.is_punct(':'))
                            && at(k + 3).is_some_and(|n| {
                                n.is_ident("new")
                                    || n.is_ident("with_capacity")
                                    || n.is_ident("from")
                            }) =>
                    {
                        report(
                            LINT_HOTPATH_ALLOC,
                            line,
                            format!(
                                "{}::{} allocates inside a loop",
                                t.text,
                                at(k + 3).map(|n| n.text.as_str()).unwrap_or("")
                            ),
                        );
                    }
                    _ => {}
                }
            }
            TokKind::Punct if t.is_punct('.') => {
                let m = at(k + 1);
                let open = at(k + 2).is_some_and(|n| n.is_punct('('));
                if !open {
                    continue;
                }
                match m.map(|n| n.text.as_str()) {
                    Some("lock") => report(
                        LINT_HOTPATH_LOCK,
                        line,
                        ".lock() blocks on the hot path".into(),
                    ),
                    Some(name @ ("unwrap" | "expect")) => report(
                        LINT_HOTPATH_UNWRAP,
                        line,
                        format!(".{name}() can panic a worker on the hot path"),
                    ),
                    Some(name @ ("to_string" | "to_vec" | "to_owned")) if in_loop[k] => report(
                        LINT_HOTPATH_ALLOC,
                        line,
                        format!(".{name}() allocates inside a loop"),
                    ),
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

/// For each code-token index, whether it sits inside a `for`/`while`/
/// `loop` body. `for` is only a loop when followed by `in` before the body
/// brace (ruling out `impl Trait for Type` and HRTB `for<'a>`).
fn loop_mask(toks: &[Tok], code: &[usize]) -> Vec<bool> {
    let at = |k: usize| -> Option<&Tok> { code.get(k).map(|&i| &toks[i]) };
    let mut mask = vec![false; code.len()];
    let mut brace_depth = 0usize;
    let mut paren_depth = 0usize;
    let mut pending_loop = false;
    let mut loop_opens: Vec<usize> = Vec::new(); // brace depths of loop bodies
    for k in 0..code.len() {
        mask[k] = !loop_opens.is_empty();
        let Some(t) = at(k) else { break };
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "loop" | "while" => pending_loop = true,
                "for" if is_for_loop(toks, code, k) => pending_loop = true,
                _ => {}
            },
            TokKind::Punct => match t.text.as_bytes()[0] {
                b'(' => paren_depth += 1,
                b')' => paren_depth = paren_depth.saturating_sub(1),
                b'{' => {
                    brace_depth += 1;
                    if paren_depth == 0 && std::mem::take(&mut pending_loop) {
                        loop_opens.push(brace_depth);
                    }
                }
                b'}' => {
                    if loop_opens.last() == Some(&brace_depth) {
                        loop_opens.pop();
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                }
                b';' if paren_depth == 0 => {
                    pending_loop = false;
                }
                _ => {}
            },
            _ => {}
        }
    }
    mask
}

/// A `for` token starts a loop iff an `in` ident appears before the next
/// top-level `{`/`;`.
fn is_for_loop(toks: &[Tok], code: &[usize], for_k: usize) -> bool {
    let at = |k: usize| -> Option<&Tok> { code.get(k).map(|&i| &toks[i]) };
    let mut depth = 0i32;
    for k in for_k + 1..code.len() {
        match at(k) {
            Some(t) if t.is_punct('(') || t.is_punct('[') => depth += 1,
            Some(t) if t.is_punct(')') || t.is_punct(']') => depth -= 1,
            Some(t) if depth == 0 && t.is_ident("in") => return true,
            Some(t) if depth == 0 && (t.is_punct('{') || t.is_punct(';')) => return false,
            Some(_) => {}
            None => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot(src: &str) -> Vec<Violation> {
        let f = ScannedFile::new("crates/serve/src/engine.rs".into(), src);
        let mut v = Vec::new();
        check_hotpath(&[f], &["crates/serve/src/engine.rs".to_string()], &mut v);
        v
    }

    #[test]
    fn flags_lock_unwrap_and_loop_alloc() {
        let v = hot("fn go(&self) {\n\
             let g = self.inner.lock();\n\
             let x = g.unwrap();\n\
             for p in pts {\n\
                 let s = p.to_string();\n\
                 let b = Vec::new();\n\
                 out.push(format!(\"{p}\"));\n\
             }\n\
             }\n");
        let lints: Vec<&str> = v.iter().map(|x| x.lint).collect();
        assert!(lints.contains(&"hotpath-lock"));
        assert!(lints.contains(&"hotpath-unwrap"));
        assert_eq!(
            lints
                .iter()
                .filter(|l| **l == "hotpath-alloc-in-loop")
                .count(),
            3
        );
    }

    #[test]
    fn alloc_outside_loop_is_fine() {
        let v = hot("fn go() { let s = x.to_string(); let v = vec![1]; }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let v = hot("impl Iterator for Chunks { fn next(&mut self) -> Option<u32> { self.k.to_string(); None } }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn while_body_counts() {
        let v = hot("fn go() { while busy() { scratch = String::new(); } }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lint, "hotpath-alloc-in-loop");
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let v = hot("fn go() {\n\
             // analyze:allow(hotpath-lock) — cold startup path, runs once\n\
             let g = self.inner.lock();\n\
             }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn test_mod_is_exempt() {
        let v = hot("#[cfg(test)]\nmod tests {\n fn t() { x.lock().unwrap(); }\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn non_hot_files_are_ignored() {
        let f = ScannedFile::new("crates/core/src/lib.rs".into(), "fn go() { x.unwrap(); }\n");
        let mut v = Vec::new();
        check_hotpath(&[f], &["crates/serve/src/engine.rs".to_string()], &mut v);
        assert!(v.is_empty());
    }
}
