//! A minimal TOML subset reader/writer for the analysis manifests.
//!
//! The workspace has no crates.io access, so this implements exactly the
//! grammar `UNSAFE_LEDGER.toml` and `ANALYZE.toml` use: `[table]` and
//! `[[array-of-tables]]` headers, `key = value` pairs where a value is a
//! basic string (`"…"` with `\"`/`\\`/`\n`/`\t` escapes), an integer, a
//! boolean, or a flat array of those, plus `#` comments and blank lines.
//! Dotted keys, inline tables, datetimes, floats, and multi-line strings
//! are out of scope and rejected loudly.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    Array(Vec<Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Array of strings, if this is one.
    pub fn as_str_array(&self) -> Option<Vec<&str>> {
        match self {
            Value::Array(items) => items.iter().map(Value::as_str).collect(),
            _ => None,
        }
    }
}

/// One `[header]` or `[[header]]` section: ordered key → value pairs.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub entries: BTreeMap<String, Value>,
}

impl Table {
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }
}

/// A parsed document: named single tables plus named arrays-of-tables.
/// Top-level (pre-header) keys live in `root`.
#[derive(Debug, Clone, Default)]
pub struct Doc {
    pub root: Table,
    pub tables: BTreeMap<String, Table>,
    pub arrays: BTreeMap<String, Vec<Table>>,
}

#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

enum Target {
    Root,
    Table(String),
    Array(String),
}

pub fn parse(src: &str) -> Result<Doc, ParseError> {
    let mut doc = Doc::default();
    let mut target = Target::Root;
    for (lineno, line) in logical_lines(src) {
        let line = line.as_str();
        if let Some(rest) = line.strip_prefix("[[") {
            let name = rest
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[header]]"))?
                .trim()
                .to_string();
            if name.is_empty() {
                return Err(err(lineno, "empty [[header]]"));
            }
            doc.arrays
                .entry(name.clone())
                .or_default()
                .push(Table::default());
            target = Target::Array(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated [header]"))?
                .trim()
                .to_string();
            if name.is_empty() {
                return Err(err(lineno, "empty [header]"));
            }
            doc.tables.entry(name.clone()).or_default();
            target = Target::Table(name);
            continue;
        }
        let (key, value_src) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, "expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || key.contains('.') {
            return Err(err(lineno, format!("unsupported key {key:?}")));
        }
        let value = parse_value(value_src.trim(), lineno)?;
        let table = match &target {
            Target::Root => &mut doc.root,
            Target::Table(name) => doc
                .tables
                .get_mut(name)
                .unwrap_or_else(|| unreachable!("table inserted at header")),
            Target::Array(name) => doc
                .arrays
                .get_mut(name)
                .and_then(|v| v.last_mut())
                .unwrap_or_else(|| unreachable!("array entry pushed at header")),
        };
        if table.entries.insert(key.to_string(), value).is_some() {
            return Err(err(lineno, format!("duplicate key {key:?}")));
        }
    }
    Ok(doc)
}

/// Join physical lines into logical ones so arrays may span lines: a line
/// with more `[` than `]` (outside strings) absorbs following lines until
/// brackets balance. Returns (first line number, joined text), comments
/// stripped and blanks dropped.
fn logical_lines(src: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut open = 0i32;
    for (i, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if open > 0 {
            let last = out.last_mut().expect("accumulating implies a prior line");
            last.1.push(' ');
            last.1.push_str(line);
            open += bracket_balance(line);
        } else {
            // Section headers are self-contained even though they start
            // with `[`; only `key = [...` values continue.
            open = if line.starts_with('[') {
                0
            } else {
                bracket_balance(line)
            };
            out.push((i + 1, line.to_string()));
        }
    }
    out
}

/// Net `[` minus `]` outside basic strings.
fn bracket_balance(line: &str) -> i32 {
    let mut n = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => n += 1,
            ']' if !in_str => n -= 1,
            _ => {}
        }
    }
    n
}

/// Strip a `#` comment that is not inside a basic string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(src: &str, lineno: usize) -> Result<Value, ParseError> {
    if src.starts_with('"') {
        let (s, rest) = parse_string(src, lineno)?;
        if !rest.trim().is_empty() {
            return Err(err(lineno, "trailing content after string"));
        }
        return Ok(Value::Str(s));
    }
    if src == "true" {
        return Ok(Value::Bool(true));
    }
    if src == "false" {
        return Ok(Value::Bool(false));
    }
    if src.starts_with('[') {
        let inner = src
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| err(lineno, "unterminated array"))?;
        let mut items = Vec::new();
        let mut rest = inner.trim();
        while !rest.is_empty() {
            if rest.starts_with('"') {
                let (s, tail) = parse_string(rest, lineno)?;
                items.push(Value::Str(s));
                rest = tail.trim_start();
            } else {
                let end = rest.find(',').unwrap_or(rest.len());
                let item = rest[..end].trim();
                if !item.is_empty() {
                    items.push(parse_scalar(item, lineno)?);
                }
                rest = &rest[end..];
            }
            if let Some(tail) = rest.strip_prefix(',') {
                rest = tail.trim_start();
            } else if !rest.is_empty() {
                return Err(err(lineno, "expected `,` between array items"));
            }
        }
        return Ok(Value::Array(items));
    }
    parse_scalar(src, lineno)
}

fn parse_scalar(src: &str, lineno: usize) -> Result<Value, ParseError> {
    src.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| err(lineno, format!("unsupported value {src:?}")))
}

/// Parse one basic string starting at `"`; returns (content, remainder).
fn parse_string(src: &str, lineno: usize) -> Result<(String, &str), ParseError> {
    let mut out = String::new();
    let mut chars = src.char_indices();
    let _ = chars.next(); // opening quote
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &src[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, other)) => {
                    return Err(err(lineno, format!("unsupported escape \\{other}")))
                }
                None => return Err(err(lineno, "dangling escape")),
            },
            _ => out.push(c),
        }
    }
    Err(err(lineno, "unterminated string"))
}

/// Escape a string for emission as a TOML basic string.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_arrays_and_scalars() {
        let doc = parse(
            r#"
# comment
top = 3

[hotpath]
files = ["a.rs", "b.rs"]   # trailing comment
strict = true

[[unsafe]]
file = "x.rs"
count = 2

[[unsafe]]
file = "y # not a comment.rs"
count = 1
"#,
        )
        .expect("parses");
        assert_eq!(doc.root.get("top").and_then(Value::as_int), Some(3));
        let hot = &doc.tables["hotpath"];
        assert_eq!(
            hot.get("files").and_then(Value::as_str_array),
            Some(vec!["a.rs", "b.rs"])
        );
        assert_eq!(hot.get("strict"), Some(&Value::Bool(true)));
        let entries = &doc.arrays["unsafe"];
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get_str("file"), Some("x.rs"));
        assert_eq!(entries[1].get_str("file"), Some("y # not a comment.rs"));
    }

    #[test]
    fn multiline_arrays_join() {
        let doc = parse("[hotpath]\nfiles = [\n    \"a.rs\",  # first\n    \"b [x].rs\",\n]\n")
            .expect("parses");
        assert_eq!(
            doc.tables["hotpath"]
                .get("files")
                .and_then(Value::as_str_array),
            Some(vec!["a.rs", "b [x].rs"])
        );
    }

    #[test]
    fn escape_roundtrip() {
        let original = "quote \" backslash \\ newline \n tab \t done";
        let doc = parse(&format!("k = {}", escape(original))).expect("parses");
        assert_eq!(doc.root.get_str("k"), Some(original));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("[unclosed").is_err());
        assert!(parse("key").is_err());
        assert!(parse("k = 1.5").is_err());
        assert!(parse("k = \"unterminated").is_err());
        assert!(parse("k = 1\nk = 2").is_err());
    }
}
