//! A lightweight Rust lexer, sufficient for lint-level analysis.
//!
//! This is not a full grammar: it tokenizes exactly the constructs that can
//! *hide* or *mimic* the tokens the lints search for — nested block
//! comments, (raw/byte) string literals, char literals vs lifetime ticks,
//! raw identifiers — so that an `unsafe` inside `r#"…"#` or `/* … */` is
//! never mistaken for code, and a real one is never missed. Everything else
//! (numbers, punctuation) is tokenized just precisely enough to walk
//! call-expression structure backwards and to track brace depth.

/// Token classes the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers `r#name` yield `name`).
    Ident,
    /// One punctuation character (`{`, `}`, `(`, `)`, `:`, `.`, `!`, …).
    Punct,
    /// `// …` comment (text includes the slashes, excludes the newline).
    LineComment,
    /// `/* … */` comment, nesting handled; may span lines.
    BlockComment,
    /// String, raw string, byte string, or byte literal.
    Str,
    /// Char literal (`'a'`, `'\n'`, `'\u{1F600}'`).
    Char,
    /// Lifetime tick (`'a`, `'static`, `'_`).
    Lifetime,
    /// Numeric literal (loose: digits plus alphanumeric suffix run).
    Num,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

struct Cursor<'a> {
    chars: std::str::Chars<'a>,
    peeked: Vec<char>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            chars: src.chars(),
            peeked: Vec::new(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self, ahead: usize) -> Option<char> {
        while self.peeked.len() <= ahead {
            self.peeked.push(self.chars.next()?);
        }
        self.peeked.get(ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = if self.peeked.is_empty() {
            self.chars.next()?
        } else {
            self.peeked.remove(0)
        };
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src`. The lexer never fails: malformed input (unterminated
/// strings/comments) degrades to a final token running to end-of-file,
/// which is the safe direction for the lints (nothing after an unterminated
/// string can be mistaken for code).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut cur = Cursor::new(src);
    let mut toks = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            loop {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(c), _) => {
                        text.push(c);
                        cur.bump();
                    }
                    (None, _) => break, // unterminated: swallow to EOF
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text,
                line,
                col,
            });
            continue;
        }
        // Raw identifiers and raw / byte strings. Longest-prefix decisions:
        // `r"`/`r#…#"` raw string, `r#ident` raw identifier, `br`/`b"`
        // byte strings, `b'…'` byte literal.
        if c == 'r' || c == 'b' {
            let next = cur.peek(1);
            let third = cur.peek(2);
            let raw_str = (c == 'r' && matches!(next, Some('"') | Some('#')))
                || (c == 'b' && next == Some('r') && matches!(third, Some('"') | Some('#')));
            // `r#ident` (raw identifier) is `r#` followed by ident-start
            // with no `"` after the hash run.
            if c == 'r' && next == Some('#') {
                // Count hashes, look at what follows.
                let mut i = 1;
                while cur.peek(i) == Some('#') {
                    i += 1;
                }
                if cur.peek(i) != Some('"') {
                    // Raw identifier: consume `r#`, lex the ident.
                    cur.bump();
                    cur.bump();
                    let mut text = String::new();
                    while let Some(c) = cur.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        text.push(c);
                        cur.bump();
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line,
                        col,
                    });
                    continue;
                }
            }
            if raw_str {
                let mut text = String::new();
                text.push(c);
                cur.bump();
                if c == 'b' {
                    text.push('r');
                    cur.bump();
                }
                let mut hashes = 0usize;
                while cur.peek(0) == Some('#') {
                    hashes += 1;
                    text.push('#');
                    cur.bump();
                }
                text.push('"');
                cur.bump(); // opening quote
                'raw: loop {
                    match cur.bump() {
                        Some('"') => {
                            text.push('"');
                            // Need `hashes` hashes to close.
                            let mut got = 0usize;
                            while got < hashes && cur.peek(got) == Some('#') {
                                got += 1;
                            }
                            if got == hashes {
                                for _ in 0..hashes {
                                    text.push('#');
                                    cur.bump();
                                }
                                break 'raw;
                            }
                        }
                        Some(c) => text.push(c),
                        None => break 'raw, // unterminated
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
                continue;
            }
            if c == 'b' && next == Some('"') {
                cur.bump(); // consume the b; fall through to string lexing
                let tok = lex_quoted(&mut cur, '"');
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: format!("b{tok}"),
                    line,
                    col,
                });
                continue;
            }
            if c == 'b' && next == Some('\'') {
                cur.bump();
                let tok = lex_quoted(&mut cur, '\'');
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: format!("b{tok}"),
                    line,
                    col,
                });
                continue;
            }
            // Plain identifier starting with r/b: fall through.
        }
        if c == '"' {
            let text = lex_quoted(&mut cur, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime. After the tick:
            //  * `\`                → char literal with escape, scan to `'`;
            //  * X followed by `'`  → 3-char literal `'X'`;
            //  * ident run         → lifetime (`'a`, `'static`, `'_`).
            let next = cur.peek(1);
            if next == Some('\\') {
                let text = lex_quoted(&mut cur, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
                continue;
            }
            if cur.peek(2) == Some('\'') && next.is_some() {
                let mut text = String::new();
                for _ in 0..3 {
                    if let Some(c) = cur.bump() {
                        text.push(c);
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                    col,
                });
                continue;
            }
            // Lifetime.
            cur.bump();
            let mut text = String::from("'");
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            toks.push(Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                col,
            });
            continue;
        }
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(c) = cur.peek(0) {
                if !(is_ident_continue(c)) {
                    break;
                }
                text.push(c);
                cur.bump();
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
                col,
            });
            continue;
        }
        // Single-char punctuation.
        cur.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            col,
        });
    }
    toks
}

/// Lex a quoted literal starting at the opening `quote` (already peeked,
/// not consumed), honoring backslash escapes. Returns the raw text
/// including quotes; unterminated literals run to EOF.
fn lex_quoted(cur: &mut Cursor<'_>, quote: char) -> String {
    let mut text = String::new();
    text.push(quote);
    cur.bump();
    loop {
        match cur.bump() {
            Some('\\') => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            Some(c) if c == quote => {
                text.push(c);
                break;
            }
            Some(c) => text.push(c),
            None => break,
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_keywords() {
        assert_eq!(idents(r#"let x = "unsafe { }";"#), vec!["let", "x"]);
        assert_eq!(idents(r##"let x = r#"unsafe"#;"##), vec!["let", "x"]);
        assert_eq!(idents(r#"let x = b"unsafe";"#), vec!["let", "x"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* unsafe */ still comment */ fn f() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.contains("unsafe"));
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("let c: char = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n';");
        let kinds: Vec<TokKind> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Char | TokKind::Lifetime))
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Char,
                TokKind::Lifetime,
                TokKind::Lifetime,
                TokKind::Char
            ]
        );
    }

    #[test]
    fn raw_identifier() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn line_numbers_follow_newlines() {
        let toks = lex("a\nb\n  c");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[2].col, 3);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("let s = \"one\ntwo\"; fn g() {}");
        let g = toks.iter().find(|t| t.is_ident("g")).expect("g lexed");
        assert_eq!(g.line, 2);
    }
}
