//! Atomics discipline: every `Ordering::*` use must be declared in the
//! per-file `[[atomics]]` manifest in `ANALYZE.toml`.
//!
//! The rules are deliberately asymmetric: acquire/release orderings are
//! granted per file (`allow = ["Acquire", "Release"]`), but `Relaxed` is
//! only granted per *receiver* (`relaxed = ["computed", "parent"]`) so a
//! relaxed load can never silently attach to a flag that actually
//! synchronizes. `SeqCst` is never implicit — a file that wants it must
//! spell it out in `allow`, which makes "SeqCst by default" show up in
//! manifest review.

use crate::lexer::{Tok, TokKind};
use crate::scan::ScannedFile;
use crate::{Violation, LINT_ATOMICS};

/// Manifest entry for one file.
#[derive(Debug, Clone)]
pub struct FilePolicy {
    pub file: String,
    /// Orderings permitted anywhere in the file (`Relaxed` is invalid
    /// here — it must be granted per receiver).
    pub allow: Vec<String>,
    /// Receiver names permitted to use `Ordering::Relaxed`.
    pub relaxed: Vec<String>,
}

const VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One `Ordering::X` occurrence.
#[derive(Debug)]
pub struct AtomicSite {
    pub line: u32,
    pub variant: String,
    /// Receiver of the enclosing atomic call (`self.version.load(...)` →
    /// `version`), or `"?"` when the expression is too exotic to name.
    pub receiver: String,
}

/// Find every non-test `Ordering::X` use in `f`.
pub fn find_atomic_sites(f: &ScannedFile) -> Vec<AtomicSite> {
    let toks = &f.toks;
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let at = |k: usize| -> Option<&Tok> { code.get(k).map(|&i| &toks[i]) };
    let mut sites = Vec::new();
    for k in 0..code.len() {
        let matched = at(k).is_some_and(|t| t.is_ident("Ordering"))
            && at(k + 1).is_some_and(|t| t.is_punct(':'))
            && at(k + 2).is_some_and(|t| t.is_punct(':'))
            && at(k + 3)
                .is_some_and(|t| t.kind == TokKind::Ident && VARIANTS.contains(&t.text.as_str()));
        if !matched {
            continue;
        }
        let line = at(k).map(|t| t.line).unwrap_or(0);
        if f.in_test_code(line) {
            continue;
        }
        sites.push(AtomicSite {
            line,
            variant: at(k + 3).map(|t| t.text.clone()).unwrap_or_default(),
            receiver: receiver_of(toks, &code, k),
        });
    }
    sites
}

/// Walk backwards from the `Ordering` token to name the receiver of the
/// enclosing atomic method call: skip to the unbalanced `(`, then expect
/// `receiver . method (`. Handles `self.field`, plain locals, `arr[i]`
/// indexing, and tuple fields like `pair.0`.
fn receiver_of(toks: &[Tok], code: &[usize], ordering_k: usize) -> String {
    let at = |k: usize| -> Option<&Tok> { code.get(k).map(|&i| &toks[i]) };
    // Find the call's opening paren: first `(` to the left not balanced by
    // a `)` seen on the way.
    let mut depth = 0i32;
    let mut k = ordering_k;
    let open = loop {
        if k == 0 {
            return "?".into();
        }
        k -= 1;
        match at(k) {
            Some(t) if t.is_punct(')') => depth += 1,
            Some(t) if t.is_punct('(') => {
                if depth == 0 {
                    break k;
                }
                depth -= 1;
            }
            Some(_) => {}
            None => return "?".into(),
        }
    };
    // `receiver . method (` — method name right before the paren, dot
    // before that.
    let method_ok = open >= 2
        && at(open - 1).is_some_and(|t| t.kind == TokKind::Ident)
        && at(open - 2).is_some_and(|t| t.is_punct('.'));
    if !method_ok {
        return "?".into();
    }
    let mut r = open - 3; // candidate receiver tail
    let mut through_tuple_field = false;
    loop {
        match at(r) {
            // `arr[i].load(...)` — skip the index back to `[`, then name
            // the array.
            Some(t) if t.is_punct(']') => {
                let mut d = 0i32;
                loop {
                    if r == 0 {
                        return "?".into();
                    }
                    r -= 1;
                    match at(r) {
                        Some(t) if t.is_punct(']') => d += 1,
                        Some(t) if t.is_punct('[') => {
                            if d == 0 {
                                break;
                            }
                            d -= 1;
                        }
                        _ => {}
                    }
                }
                if r == 0 {
                    return "?".into();
                }
                r -= 1;
                continue;
            }
            // Tuple field access: `pair.0.store(...)` names the pair.
            Some(t) if t.kind == TokKind::Num && t.text == "0" => {
                if r < 2 || !at(r - 1).is_some_and(|t| t.is_punct('.')) {
                    return "?".into();
                }
                through_tuple_field = true;
                r -= 2;
                continue;
            }
            Some(t) if t.kind == TokKind::Ident => {
                if t.text == "self" {
                    // `self.0.load(...)` on a newtype names the wrapper
                    // field; a bare `self.load(...)` has nothing to name.
                    return if through_tuple_field {
                        "self.0".into()
                    } else {
                        "?".into()
                    };
                }
                return t.text.clone();
            }
            _ => return "?".into(),
        }
    }
}

/// Check every file's atomics against the manifest. Returns the number of
/// `Ordering::*` sites seen outside test code.
pub fn check_atomics(
    files: &[ScannedFile],
    policies: &[FilePolicy],
    violations: &mut Vec<Violation>,
) -> usize {
    let mut total = 0usize;
    for p in policies {
        for a in &p.allow {
            if a == "Relaxed" {
                violations.push(Violation {
                    lint: LINT_ATOMICS,
                    file: p.file.clone(),
                    line: 0,
                    message:
                        "manifest lists Relaxed in `allow`; grant it per receiver via `relaxed = [...]`"
                            .into(),
                });
            } else if !VARIANTS.contains(&a.as_str()) {
                violations.push(Violation {
                    lint: LINT_ATOMICS,
                    file: p.file.clone(),
                    line: 0,
                    message: format!("manifest allows unknown ordering {a:?}"),
                });
            }
        }
    }
    for f in files {
        let sites = find_atomic_sites(f);
        if sites.is_empty() {
            continue;
        }
        total += sites.len();
        let policy = policies.iter().find(|p| p.file == f.rel_path);
        let Some(policy) = policy else {
            violations.push(Violation {
                lint: LINT_ATOMICS,
                file: f.rel_path.clone(),
                line: sites[0].line,
                message: format!(
                    "file uses atomics ({} site(s)) but has no [[atomics]] entry in ANALYZE.toml",
                    sites.len()
                ),
            });
            continue;
        };
        for s in &sites {
            if f.allow_for(s.line, LINT_ATOMICS).is_some() {
                continue;
            }
            if s.variant == "Relaxed" {
                if !policy.relaxed.iter().any(|r| r == &s.receiver) {
                    violations.push(Violation {
                        lint: LINT_ATOMICS,
                        file: f.rel_path.clone(),
                        line: s.line,
                        message: format!(
                            "Ordering::Relaxed on `{}` is not in this file's `relaxed` list \
                             (named counters only)",
                            s.receiver
                        ),
                    });
                }
            } else if !policy.allow.iter().any(|a| a == &s.variant) {
                violations.push(Violation {
                    lint: LINT_ATOMICS,
                    file: f.rel_path.clone(),
                    line: s.line,
                    message: format!(
                        "Ordering::{} is not in this file's `allow` list {:?}",
                        s.variant, policy.allow
                    ),
                });
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanned(src: &str) -> ScannedFile {
        ScannedFile::new("crates/x/src/lib.rs".into(), src)
    }

    fn policy(allow: &[&str], relaxed: &[&str]) -> FilePolicy {
        FilePolicy {
            file: "crates/x/src/lib.rs".into(),
            allow: allow.iter().map(|s| s.to_string()).collect(),
            relaxed: relaxed.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn receivers_resolve() {
        let f = scanned(
            "fn go(&self) {\n\
             self.version.load(Ordering::Acquire);\n\
             counter.fetch_add(1, Ordering::Relaxed);\n\
             slots[i].state.store(1, Ordering::Release);\n\
             pair.0.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);\n\
             }\n",
        );
        let sites = find_atomic_sites(&f);
        let got: Vec<(&str, &str)> = sites
            .iter()
            .map(|s| (s.variant.as_str(), s.receiver.as_str()))
            .collect();
        assert_eq!(
            got,
            vec![
                ("Acquire", "version"),
                ("Relaxed", "counter"),
                ("Release", "state"),
                ("AcqRel", "pair"),
                ("Acquire", "pair"),
            ]
        );
    }

    #[test]
    fn relaxed_needs_named_receiver() {
        let f = scanned("fn go() { c.fetch_add(1, Ordering::Relaxed); }\n");
        let mut v = Vec::new();
        check_atomics(&[f], &[policy(&["Acquire"], &[])], &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0]
            .message
            .contains("`c` is not in this file's `relaxed` list"));
    }

    #[test]
    fn unlisted_ordering_fails_and_listed_passes() {
        let f =
            scanned("fn go() { flag.store(true, Ordering::SeqCst); v.load(Ordering::Acquire); }\n");
        let mut v = Vec::new();
        let n = check_atomics(&[f], &[policy(&["Acquire"], &[])], &mut v);
        assert_eq!(n, 2);
        assert_eq!(v.len(), 1);
        assert!(v[0]
            .message
            .contains("Ordering::SeqCst is not in this file's `allow`"));
    }

    #[test]
    fn unmanifested_file_fails() {
        let f = scanned("fn go() { v.load(Ordering::Acquire); }\n");
        let mut v = Vec::new();
        check_atomics(&[f], &[], &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("no [[atomics]] entry"));
    }

    #[test]
    fn relaxed_in_allow_is_a_manifest_error() {
        let f = scanned("fn go() {}\n");
        let mut v = Vec::new();
        check_atomics(&[f], &[policy(&["Relaxed"], &[])], &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("grant it per receiver"));
    }

    #[test]
    fn test_code_is_exempt() {
        let f =
            scanned("#[cfg(test)]\nmod tests {\n fn t() { x.store(0, Ordering::SeqCst); }\n}\n");
        let mut v = Vec::new();
        let n = check_atomics(&[f], &[], &mut v);
        assert_eq!(n, 0);
        assert!(v.is_empty());
    }
}
