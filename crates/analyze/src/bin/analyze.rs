//! The `analyze` CLI: `analyze check [--root DIR] [--json]` runs every
//! lint and exits 0 (clean), 1 (violations), or 2 (config error);
//! `analyze fix-ledger [--root DIR]` regenerates `UNSAFE_LEDGER.toml`
//! from the tree.

use parclust_analyze::{check, find_root, ledger, scan_workspace, Manifest};
use std::path::PathBuf;
use std::process::ExitCode;

const MANIFEST_FILE: &str = "ANALYZE.toml";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut root_flag: Option<PathBuf> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "check" | "fix-ledger" if cmd.is_none() => cmd = Some(&args[i]),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root_flag = Some(PathBuf::from(dir)),
                    None => return usage("--root needs a directory"),
                }
            }
            "--json" => json = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    let Some(cmd) = cmd else {
        return usage("expected a subcommand: check | fix-ledger");
    };

    let root = match root_flag {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => return config_error(&format!("cannot read cwd: {e}")),
            };
            match find_root(&cwd) {
                Some(r) => r,
                None => {
                    return config_error(&format!(
                        "no {MANIFEST_FILE} found in {} or any parent; pass --root",
                        cwd.display()
                    ))
                }
            }
        }
    };

    let manifest_src = match std::fs::read_to_string(root.join(MANIFEST_FILE)) {
        Ok(s) => s,
        Err(e) => return config_error(&format!("cannot read {MANIFEST_FILE}: {e}")),
    };
    let manifest = match Manifest::parse(&manifest_src) {
        Ok(m) => m,
        Err(e) => return config_error(&format!("{MANIFEST_FILE}: {e}")),
    };
    let ledger_path = root.join(ledger::LEDGER_FILE);
    let ledger = match std::fs::read_to_string(&ledger_path) {
        Ok(s) => match ledger::Ledger::parse(&s) {
            Ok(l) => l,
            Err(e) => return config_error(&format!("{}: {e}", ledger::LEDGER_FILE)),
        },
        Err(_) => ledger::Ledger::default(), // missing ledger → everything reports as new
    };
    let files = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => return config_error(&format!("scanning workspace: {e}")),
    };

    match cmd {
        "check" => {
            let report = check(&files, &manifest, &ledger);
            if json {
                println!("{}", report.to_json().to_json_string());
            } else {
                for v in &report.violations {
                    println!("{v}");
                }
                println!(
                    "analyze: {} file(s), {} unsafe site(s), {} atomic ordering site(s), \
                     {} allow(s) — {}",
                    report.files_scanned,
                    report.unsafe_sites,
                    report.atomics_sites,
                    report.allows_used,
                    if report.ok() {
                        "clean".to_string()
                    } else {
                        format!("{} violation(s)", report.violations.len())
                    }
                );
            }
            if report.ok() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        "fix-ledger" => {
            let regenerated = ledger::fix_ledger(&files, &ledger);
            if let Err(e) = std::fs::write(&ledger_path, &regenerated) {
                return config_error(&format!("writing {}: {e}", ledger_path.display()));
            }
            let entries = regenerated.matches("[[unsafe]]").count();
            println!(
                "analyze: wrote {} with {entries} entr{}",
                ledger_path.display(),
                if entries == 1 { "y" } else { "ies" }
            );
            ExitCode::SUCCESS
        }
        _ => unreachable!("cmd validated above"),
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("analyze: {msg}");
    eprintln!("usage: analyze check [--root DIR] [--json]");
    eprintln!("       analyze fix-ledger [--root DIR]");
    ExitCode::from(2)
}

fn config_error(msg: &str) -> ExitCode {
    eprintln!("analyze: {msg}");
    ExitCode::from(2)
}
