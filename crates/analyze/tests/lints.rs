//! End-to-end lint semantics over in-memory fixtures: seeded violations
//! must be reported at the right `file:line`, clean fixtures must pass,
//! and the escape hatches (`analyze:allow`, `#[cfg(test)]`, ledger
//! entries) must behave exactly as documented.

use parclust_analyze::ledger::Ledger;
use parclust_analyze::scan::ScannedFile;
use parclust_analyze::{
    check, Manifest, Report, LINT_ALLOW_HYGIENE, LINT_ATOMICS, LINT_HOTPATH_ALLOC,
    LINT_HOTPATH_LOCK, LINT_HOTPATH_UNWRAP, LINT_UNSAFE_LEDGER,
};

fn file(path: &str, src: &str) -> ScannedFile {
    ScannedFile::new(path.to_string(), src)
}

fn run(files: Vec<ScannedFile>, manifest_toml: &str, ledger_toml: &str) -> Report {
    let manifest = Manifest::parse(manifest_toml).expect("manifest fixture parses");
    let ledger = Ledger::parse(ledger_toml).expect("ledger fixture parses");
    check(&files, &manifest, &ledger)
}

fn lints_of(report: &Report) -> Vec<&'static str> {
    report.violations.iter().map(|v| v.lint).collect()
}

const EMPTY_MANIFEST: &str = "";

#[test]
fn clean_fixture_passes_every_lint() {
    let src = "\
// SAFETY: p is valid and exclusively owned for the call.
unsafe fn read_it(p: *const u8) -> u8 {
    // SAFETY: contract forwarded from the caller.
    unsafe { *p }
}
";
    let ledger = "\
[[unsafe]]
file = \"crates/x/src/lib.rs\"
context = \"read_it\"
kind = \"fn\"
count = 1
invariant = \"p is valid and exclusively owned\"

[[unsafe]]
file = \"crates/x/src/lib.rs\"
context = \"read_it\"
kind = \"block\"
count = 1
invariant = \"contract forwarded\"
";
    let report = run(
        vec![file("crates/x/src/lib.rs", src)],
        EMPTY_MANIFEST,
        ledger,
    );
    assert!(
        report.ok(),
        "unexpected violations: {:?}",
        report.violations
    );
    assert_eq!(report.unsafe_sites, 2);
}

#[test]
fn undocumented_unsafe_is_flagged_at_its_line() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let report = run(vec![file("crates/x/src/lib.rs", src)], EMPTY_MANIFEST, "");
    let missing: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.lint == LINT_UNSAFE_LEDGER)
        .collect();
    // Two findings: no SAFETY comment, and not in the ledger.
    assert_eq!(missing.len(), 2, "{missing:?}");
    assert!(missing.iter().all(|v| v.line == 2));
    assert!(missing.iter().any(|v| v.message.contains("SAFETY")));
    assert!(missing
        .iter()
        .any(|v| v.message.contains("not in UNSAFE_LEDGER.toml")));
}

#[test]
fn stale_and_miscounted_ledger_entries_are_flagged() {
    let src = "\
// SAFETY: fine.
unsafe fn a() {}
";
    let ledger = "\
[[unsafe]]
file = \"crates/x/src/lib.rs\"
context = \"a\"
kind = \"fn\"
count = 2
invariant = \"fine\"

[[unsafe]]
file = \"crates/x/src/lib.rs\"
context = \"gone\"
kind = \"block\"
count = 1
invariant = \"was removed\"
";
    let report = run(
        vec![file("crates/x/src/lib.rs", src)],
        EMPTY_MANIFEST,
        ledger,
    );
    let msgs: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.lint == LINT_UNSAFE_LEDGER)
        .map(|v| v.message.as_str())
        .collect();
    assert!(
        msgs.iter()
            .any(|m| m.contains("1 site(s)") && m.contains("records 2")),
        "count drift not reported: {msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("stale")),
        "stale entry not reported: {msgs:?}"
    );
}

#[test]
fn cfg_test_code_is_exempt_from_unsafe_ledger() {
    let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        unsafe { std::hint::unreachable_unchecked() };
    }
}
";
    let report = run(vec![file("crates/x/src/lib.rs", src)], EMPTY_MANIFEST, "");
    assert!(
        report.ok(),
        "test code must be exempt: {:?}",
        report.violations
    );
    assert_eq!(report.unsafe_sites, 0);
}

#[test]
fn atomics_require_a_manifest_entry() {
    let src = "\
use std::sync::atomic::{AtomicUsize, Ordering};
fn f(x: &AtomicUsize) -> usize {
    x.load(Ordering::Acquire)
}
";
    // No manifest entry for the file: violation.
    let report = run(vec![file("crates/x/src/lib.rs", src)], EMPTY_MANIFEST, "");
    assert_eq!(lints_of(&report), vec![LINT_ATOMICS]);
    assert_eq!(report.violations[0].line, 3);

    // Matching entry: clean.
    let manifest = "\
[[atomics]]
file = \"crates/x/src/lib.rs\"
allow = [\"Acquire\"]
";
    let report = run(vec![file("crates/x/src/lib.rs", src)], manifest, "");
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(report.atomics_sites, 1);
}

#[test]
fn relaxed_is_granted_per_receiver_not_per_file() {
    let src = "\
use std::sync::atomic::{AtomicU64, Ordering};
fn bump(counter: &AtomicU64, other: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
    other.fetch_add(1, Ordering::Relaxed);
}
";
    let manifest = "\
[[atomics]]
file = \"crates/x/src/lib.rs\"
relaxed = [\"counter\"]
";
    let report = run(vec![file("crates/x/src/lib.rs", src)], manifest, "");
    // `counter` is granted; `other` is not.
    assert_eq!(lints_of(&report), vec![LINT_ATOMICS]);
    assert_eq!(report.violations[0].line, 4);
    assert!(report.violations[0].message.contains("other"));
}

#[test]
fn seqcst_is_rejected_unless_explicitly_allowed() {
    let src = "\
use std::sync::atomic::{AtomicBool, Ordering};
fn f(x: &AtomicBool) {
    x.store(true, Ordering::SeqCst);
}
";
    let manifest = "\
[[atomics]]
file = \"crates/x/src/lib.rs\"
allow = [\"Release\"]
";
    let report = run(vec![file("crates/x/src/lib.rs", src)], manifest, "");
    assert_eq!(lints_of(&report), vec![LINT_ATOMICS]);
    assert!(report.violations[0].message.contains("SeqCst"));
}

#[test]
fn hot_files_reject_locks_unwraps_and_loop_allocation() {
    let src = "\
use std::sync::Mutex;
fn hot(xs: &[u64]) -> u64 {
    let m = Mutex::new(0u64);
    let mut total = 0;
    for x in xs {
        let s = x.to_string();
        total += s.len() as u64;
    }
    total + *m.lock().unwrap()
}
";
    let manifest = "\
[hotpath]
files = [\"crates/x/src/hot.rs\"]
";
    let report = run(vec![file("crates/x/src/hot.rs", src)], manifest, "");
    let lints = lints_of(&report);
    assert!(lints.contains(&LINT_HOTPATH_LOCK), "{lints:?}");
    assert!(lints.contains(&LINT_HOTPATH_UNWRAP), "{lints:?}");
    assert!(lints.contains(&LINT_HOTPATH_ALLOC), "{lints:?}");

    // The same file outside the hot list is fine.
    let report = run(vec![file("crates/x/src/hot.rs", src)], EMPTY_MANIFEST, "");
    assert!(report.ok(), "{:?}", report.violations);
}

#[test]
fn allow_with_reason_suppresses_but_bare_allow_is_a_violation() {
    let with_reason = "\
use std::sync::Mutex;
fn hot() -> u64 {
    // analyze:allow(hotpath-lock) — construction happens once at startup
    let m = Mutex::new(7u64);
    // analyze:allow(hotpath-lock, hotpath-unwrap) — cold error path, poisoning impossible
    *m.lock().unwrap()
}
";
    let manifest = "\
[hotpath]
files = [\"crates/x/src/hot.rs\"]
";
    let report = run(vec![file("crates/x/src/hot.rs", with_reason)], manifest, "");
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(report.allows_used, 2);

    // Same code, no reason after the lint list: allow-hygiene violation
    // AND the underlying lint still fires (a bare allow grants nothing
    // trustworthy).
    let bare = with_reason.replace(" — construction happens once at startup", "");
    let report = run(vec![file("crates/x/src/hot.rs", &bare)], manifest, "");
    let lints = lints_of(&report);
    assert!(lints.contains(&LINT_ALLOW_HYGIENE), "{lints:?}");
}

#[test]
fn unknown_lint_name_in_allow_is_flagged() {
    let src = "\
fn f() {
    // analyze:allow(hotpath-lockk) — typo in the lint name here
    let _x = 1;
}
";
    let report = run(vec![file("crates/x/src/lib.rs", src)], EMPTY_MANIFEST, "");
    assert_eq!(lints_of(&report), vec![LINT_ALLOW_HYGIENE]);
    assert!(report.violations[0].message.contains("hotpath-lockk"));
}

#[test]
fn unsafe_in_strings_and_comments_is_not_counted() {
    let src = "\
fn f() -> String {
    // this comment says unsafe but there is none
    /* nor here: unsafe { } */
    let a = \"unsafe { *p }\";
    let b = r#\"more unsafe text\"#;
    format!(\"{a}{b}\")
}
";
    let report = run(vec![file("crates/x/src/lib.rs", src)], EMPTY_MANIFEST, "");
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(report.unsafe_sites, 0);
}

#[test]
fn report_json_shape_is_stable() {
    let src = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let report = run(vec![file("crates/x/src/lib.rs", src)], EMPTY_MANIFEST, "");
    let json = report.to_json().to_json_string();
    assert!(json.contains("\"ok\":false"));
    assert!(json.contains("\"unsafe-ledger\""));
    assert!(json.contains("\"line\":2"));
}
