//! Property tests for the lexer on adversarial token streams.
//!
//! Sources are composed from fragments with *known* token-census ground
//! truth (how many real `unsafe` keyword idents, strings, chars,
//! lifetimes, block comments each contains), shuffled into random files.
//! The lexer must report exactly the summed census no matter how the
//! fragments are juxtaposed — i.e. no fragment can leak state into the
//! next (unterminated strings, half-open comments, misread ticks).

use parclust_analyze::lexer::{lex, TokKind};
use proptest::prelude::*;

/// (source line, unsafe idents, strings, chars, lifetimes, block comments)
const FRAGMENTS: &[(&str, usize, usize, usize, usize, usize)] = &[
    ("let x = 1;", 0, 0, 0, 0, 0),
    ("/* unsafe */", 0, 0, 0, 0, 1),
    ("/* outer /* unsafe nested */ tail */", 0, 0, 0, 0, 1),
    ("// unsafe in a line comment", 0, 0, 0, 0, 0),
    ("let s = \"unsafe { *p }\";", 0, 1, 0, 0, 0),
    ("let r = r#\"raw \"unsafe\" text\"#;", 0, 1, 0, 0, 0),
    ("let b = b\"unsafe bytes\";", 0, 1, 0, 0, 0),
    ("unsafe { touch(); }", 1, 0, 0, 0, 0),
    ("pub unsafe fn g() { h(); }", 1, 0, 0, 0, 0),
    ("let c = 'u'; let d = '\\n';", 0, 0, 2, 0, 0),
    ("fn f<'a>(x: &'a str) -> &'a str { x }", 0, 0, 0, 3, 0),
    ("let lt: &'static str = \"x\";", 0, 1, 0, 1, 0),
    ("let esc = '\\'';", 0, 0, 1, 0, 0),
    (
        "let mix = \"has // no comment /* either */\";",
        0,
        1,
        0,
        0,
        0,
    ),
    (
        "impl<'x> Drop for T<'x> { fn drop(&mut self) {} }",
        0,
        0,
        0,
        2,
        0,
    ),
];

fn census(toks: &[parclust_analyze::lexer::Tok]) -> (usize, usize, usize, usize, usize) {
    let count = |k: TokKind| toks.iter().filter(|t| t.kind == k).count();
    (
        toks.iter().filter(|t| t.is_ident("unsafe")).count(),
        count(TokKind::Str),
        count(TokKind::Char),
        count(TokKind::Lifetime),
        count(TokKind::BlockComment),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random fragment compositions lex to exactly the summed census.
    #[test]
    fn composed_fragments_lex_exactly(picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..40)) {
        let mut want = (0, 0, 0, 0, 0);
        let mut src = String::new();
        for &i in &picks {
            let (text, u, s, c, l, b) = FRAGMENTS[i];
            src.push_str(text);
            src.push('\n');
            want = (want.0 + u, want.1 + s, want.2 + c, want.3 + l, want.4 + b);
        }
        let toks = lex(&src);
        prop_assert_eq!(census(&toks), want);
        // Token positions are monotone in line number.
        prop_assert!(toks.windows(2).all(|w| w[0].line <= w[1].line));
    }

    /// Block comments nest to arbitrary depth; everything inside is one
    /// comment token, and code resumes cleanly afterwards.
    #[test]
    fn nested_block_comments(depth in 1usize..12, tail_unsafe in 0usize..2) {
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("/* header ");
        }
        src.push_str(" unsafe \"not a string\" 'x ");
        for _ in 0..depth {
            src.push_str(" */");
        }
        src.push('\n');
        for _ in 0..tail_unsafe {
            src.push_str("unsafe { f(); }\n");
        }
        let toks = lex(&src);
        let (u, s, c, _l, b) = census(&toks);
        prop_assert_eq!(b, 1, "one nested comment expected");
        prop_assert_eq!(u, tail_unsafe);
        prop_assert_eq!((s, c), (0, 0));
    }

    /// Raw strings with any hash arity swallow quotes, hashes-with-fewer-
    /// than-arity, and `unsafe` alike; the following code is intact.
    #[test]
    fn raw_strings_with_hashes(hashes in 1usize..6, kind in 0usize..2) {
        let h = "#".repeat(hashes);
        // Inner `"` + fewer hashes than the opener must NOT terminate.
        let inner_hashes = "#".repeat(hashes - 1);
        let prefix = if kind == 0 { "r" } else { "br" };
        let src = format!(
            "let s = {prefix}{h}\"says \"{inner_hashes} unsafe \" end\"{h};\nunsafe {{ g(); }}\n"
        );
        let toks = lex(&src);
        let (u, s, _c, _l, _b) = census(&toks);
        prop_assert_eq!(s, 1, "exactly one raw string in {}", src);
        prop_assert_eq!(u, 1, "only the trailing unsafe counts in {}", src);
    }

    /// Char literals and lifetimes disambiguate in any interleaving.
    #[test]
    fn chars_vs_lifetimes(picks in prop::collection::vec(0usize..4, 1..20)) {
        let mut src = String::new();
        let mut want_chars = 0usize;
        let mut want_lifetimes = 0usize;
        for (n, &p) in picks.iter().enumerate() {
            match p {
                0 => { src.push_str(&format!("let c{n} = 'a';\n")); want_chars += 1; }
                1 => { src.push_str(&format!("let e{n} = '\\u{{1F600}}';\n")); want_chars += 1; }
                2 => { src.push_str(&format!("fn s{n}(x: &'static str) -> usize {{ x.len() }}\n")); want_lifetimes += 1; }
                _ => { src.push_str(&format!("struct W{n}<'w>(&'w u8);\n")); want_lifetimes += 2; }
            }
        }
        let toks = lex(&src);
        let (_u, _s, c, l, _b) = census(&toks);
        prop_assert_eq!(c, want_chars);
        prop_assert_eq!(l, want_lifetimes);
    }

    /// A trailing newline (or none) never changes the token stream.
    #[test]
    fn trailing_newline_is_irrelevant(picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..12)) {
        let body: Vec<&str> = picks.iter().map(|&i| FRAGMENTS[i].0).collect();
        let a = body.join("\n");
        let b = format!("{a}\n");
        let ta = lex(&a);
        let tb = lex(&b);
        prop_assert_eq!(ta.len(), tb.len());
        for (x, y) in ta.iter().zip(tb.iter()) {
            prop_assert_eq!(x.kind, y.kind);
            prop_assert_eq!(&x.text, &y.text);
        }
    }
}
