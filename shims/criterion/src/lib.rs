//! Offline stand-in for the subset of
//! [criterion](https://docs.rs/criterion) used by this workspace's benches.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group`
//! structure compiling and produces simple best/mean timings on stdout —
//! enough to compare implementations locally, without criterion's
//! statistical machinery.

use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything acceptable as a bench id: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: usize,
    /// (best, mean) seconds, filled by `iter`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warmup, then `samples` timed runs.
        black_box(routine());
        let mut best = f64::INFINITY;
        let mut sum = 0.0;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let secs = t0.elapsed().as_secs_f64();
            best = best.min(secs);
            sum += secs;
        }
        self.result = Some((best, sum / self.samples as f64));
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        self.report(&label, bencher.result);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher, input);
        self.report(&label, bencher.result);
        self
    }

    fn report(&self, label: &str, result: Option<(f64, f64)>) {
        match result {
            Some((best, mean)) => println!(
                "{}/{label}: best {:.6}s mean {:.6}s ({} samples)",
                self.name, best, mean, self.sample_size
            ),
            None => println!("{}/{label}: no measurement", self.name),
        }
    }

    pub fn finish(self) {}
}

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
    ($name:ident = $alias:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_measures() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).measurement_time(Duration::from_millis(1));
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        // warmup + 3 samples
        assert_eq!(ran, 4);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).into_label(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(0.5).into_label(), "0.5");
    }
}
