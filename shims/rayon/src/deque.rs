//! Per-worker Chase–Lev work-stealing deques.
//!
//! Each pool worker owns one [`Deque`]: the owner pushes and pops jobs at
//! the *bottom* (LIFO, so nested `join`s reclaim their own most recent job
//! with one uncontended pop), while idle workers steal from the *top*
//! (FIFO, so thieves take the oldest — largest — pending subtree). This is
//! the classic Chase–Lev layout with the memory orderings from Lê, Pop,
//! Cohen & Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP '13):
//!
//! * `push` publishes the slot with a `Release` store of `bottom`;
//! * `steal` validates its speculative slot read with a `SeqCst` CAS on
//!   `top` — a failed CAS means another thief (or the owner taking the last
//!   element) won, and the read is discarded;
//! * `pop` decrements `bottom`, then a `SeqCst` fence orders that store
//!   against the thieves' `top` reads, so owner and thief can never both
//!   keep the same job.
//!
//! Slots hold the two (under racecheck: three) words of an erased
//! [`JobRef`] as individual atomics, so a stalled thief that loses the CAS
//! race may read a *stale* job — but never a torn one, and the value is
//! discarded on CAS failure. Growth installs a doubled buffer and retires
//! the old one until the deque drops (a stalled thief may still be reading
//! it); `top` monotonically increasing guarantees a slot is never rewritten
//! while a thief could still validate a read of it within one buffer.
//!
//! Under the `racecheck` feature the real publication edge (the `Release`
//! store of `bottom` paired with a successful steal) is modeled on the
//! job's own `SyncVar`: released in [`Deque::push`], acquired in
//! [`Deque::steal`] after the validating CAS. [`Deque::push_racy`] is a
//! test-only seeded bug that skips the release — the moral equivalent of a
//! `Relaxed` bottom store — so the detector's coverage of the steal edge
//! can itself be tested.
//!
//! The deque itself carries no instrumentation: steal attempts/hits, jobs
//! executed, injector pushes, and idle parks are counted per worker in the
//! registry (see `WorkerStats` in [`crate::registry`]) and exported via
//! [`crate::ThreadPool::metrics`] — keeping this hot loop free of even
//! `Relaxed` counter traffic.

use crate::registry::{JobRef, RawJob};
use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::Mutex;

/// Starting buffer capacity (slots). Deliberately small so ordinary test
/// workloads exercise the growth path.
const INITIAL_CAP: usize = 64;

/// Outcome of a steal attempt.
pub(crate) enum Steal {
    /// Nothing to take (`top >= bottom` at the time of the scan).
    Empty,
    /// Lost a CAS race with the owner or another thief; retrying may help.
    Abort,
    /// Took the oldest queued job.
    Success(JobRef),
}

/// One job slot: the words of a [`RawJob`], each stored atomically so a
/// concurrent stale read is unserializable garbage but never a torn value.
struct Slot {
    data: AtomicPtr<()>,
    exec: AtomicPtr<()>,
    #[cfg(feature = "racecheck")]
    publish: AtomicPtr<()>,
}

/// A growable circular buffer indexed by the unwrapped `top`/`bottom`
/// counters (masked; capacity is a power of two).
struct Buffer {
    slots: Box<[Slot]>,
    mask: usize,
}

impl Buffer {
    fn alloc(cap: usize) -> Box<Buffer> {
        debug_assert!(cap.is_power_of_two());
        let slots = (0..cap)
            .map(|_| Slot {
                data: AtomicPtr::new(ptr::null_mut()),
                exec: AtomicPtr::new(ptr::null_mut()),
                #[cfg(feature = "racecheck")]
                publish: AtomicPtr::new(ptr::null_mut()),
            })
            .collect();
        Box::new(Buffer {
            slots,
            mask: cap - 1,
        })
    }

    #[inline]
    fn cap(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot(&self, index: isize) -> &Slot {
        &self.slots[index as usize & self.mask]
    }

    /// Store a job's words into the slot for `index` (owner only).
    #[inline]
    fn write(&self, index: isize, job: JobRef) {
        let raw = job.into_raw();
        let slot = self.slot(index);
        slot.data.store(raw.data, Ordering::Relaxed);
        slot.exec.store(raw.exec, Ordering::Relaxed);
        #[cfg(feature = "racecheck")]
        slot.publish.store(raw.publish, Ordering::Relaxed);
    }

    /// Load the job words at `index`. The result is only meaningful once
    /// the caller validates it (owner: the fence protocol; thief: the
    /// `top` CAS) — until then it may be stale, but never torn.
    #[inline]
    fn read(&self, index: isize) -> JobRef {
        let slot = self.slot(index);
        let raw = RawJob {
            data: slot.data.load(Ordering::Relaxed),
            exec: slot.exec.load(Ordering::Relaxed),
            #[cfg(feature = "racecheck")]
            publish: slot.publish.load(Ordering::Relaxed),
        };
        // SAFETY: slots are only written by `Buffer::write` with words
        // taken from a real JobRef, and growth copies slots verbatim, so
        // any (data, exec) pair read here was a valid pairing. Validation
        // by the caller guarantees the pairing is also *current* before
        // the job is executed.
        unsafe { JobRef::from_raw(raw) }
    }
}

/// A single worker's stealing deque. Exactly one thread (the owner) may
/// call [`push`](Deque::push)/[`pop`](Deque::pop); any thread may call
/// [`steal`](Deque::steal).
pub(crate) struct Deque {
    /// Next slot the owner writes; owner-only stores.
    bottom: AtomicIsize,
    /// Oldest live slot; advanced by the validating CAS in `steal`/`pop`.
    top: AtomicIsize,
    /// Current buffer. Replaced (owner-only) on growth.
    buf: AtomicPtr<Buffer>,
    /// Buffers replaced by growth. They must outlive any stalled thief
    /// still speculatively reading them, so they are only freed when the
    /// deque itself drops.
    // analyze:allow(hotpath-lock) — touched only on the rare amortized growth path, never per job
    #[allow(clippy::vec_box)]
    // each Buffer needs a stable address: stalled thieves hold raw pointers into it
    retired: Mutex<Vec<Box<Buffer>>>,
}

impl Deque {
    pub(crate) fn new() -> Deque {
        Deque {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buf: AtomicPtr::new(Box::into_raw(Buffer::alloc(INITIAL_CAP))),
            // analyze:allow(hotpath-lock) — one-time construction, not per job
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Owner-only: publish a job at the bottom.
    pub(crate) fn push(&self, job: JobRef) {
        // The Release store of `bottom` in `push_inner` is the real
        // publication edge for this job; model it on the job's SyncVar so
        // a thief that executes the job provably happens-after this point.
        #[cfg(feature = "racecheck")]
        // SAFETY: the job is enqueued right below and its pointee stays
        // alive until executed (join/scope contract), so the publish var
        // it points to is alive here.
        unsafe {
            job.release_publish()
        };
        self.push_inner(job);
    }

    /// Racecheck-only seeded bug: push *without* the modeled release —
    /// what a `Relaxed` store of `bottom` would be. Exists so tests can
    /// assert the detector actually covers the steal edge.
    #[cfg(feature = "racecheck")]
    #[cfg_attr(not(test), allow(dead_code))] // exercised only by the detector's own tests
    pub(crate) fn push_racy(&self, job: JobRef) {
        self.push_inner(job);
    }

    fn push_inner(&self, job: JobRef) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: `buf` always points at a live Buffer — installed at
        // construction or by `grow`, and only freed in `drop` (replaced
        // buffers are retired, not freed). Only the owner replaces it, and
        // we are the owner.
        let mut buffer = unsafe { &*self.buf.load(Ordering::Relaxed) };
        if b - t >= buffer.cap() as isize {
            self.grow(t, b);
            // SAFETY: as above; `grow` installed the replacement.
            buffer = unsafe { &*self.buf.load(Ordering::Relaxed) };
        }
        buffer.write(b, job);
        // Release-publish the slot write above to any thief that acquires
        // `bottom` (the steal-side load) — the Chase–Lev publication edge.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: take the most recently pushed job (LIFO).
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: `buf` is live and only the owner (us) replaces it.
        let buffer = unsafe { &*self.buf.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // Order our `bottom` store against the thieves' `top` CASes: after
        // this fence, either we see every steal that could have taken slot
        // `b`, or the thief sees our decremented `bottom` and aborts.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let job = buffer.read(b);
        if t == b {
            // Last element: race any thief for it with the same CAS they
            // use, so exactly one side keeps the job.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            if !won {
                // A thief validated first; our copy of the job is dead.
                return None;
            }
        }
        Some(job)
    }

    /// Any thread: try to take the oldest job (FIFO).
    pub(crate) fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        // Order the `top` load above against the `bottom` load below, so a
        // concurrent `pop` cannot hide the last element from us while we
        // also lose the CAS (the classic owner/thief symmetry argument).
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // SAFETY: `buf` is live (never freed before the deque drops;
        // growth retires, it does not free).
        let buffer = unsafe { &*self.buf.load(Ordering::Acquire) };
        // Speculative read: may be stale if the owner wrapped past us, but
        // the CAS below only succeeds if slot `t` was still live, in which
        // case the owner cannot have rewritten it (slots are rewritten
        // only once `top` has moved past them).
        let job = buffer.read(t);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Abort;
        }
        // The CAS validated ownership of the job; model the acquire side
        // of the publication edge released in `push`.
        #[cfg(feature = "racecheck")]
        // SAFETY: we now exclusively own this pending job, so its pointee
        // (and the publish var inside it) is alive until we execute it.
        unsafe {
            job.acquire_publish()
        };
        Steal::Success(job)
    }

    /// Owner-only: replace the buffer with one of double capacity, copying
    /// the live range `[t, b)`.
    fn grow(&self, t: isize, b: isize) {
        let old_ptr = self.buf.load(Ordering::Relaxed);
        // SAFETY: `buf` is live and only the owner (us) replaces it.
        let old = unsafe { &*old_ptr };
        let new = Buffer::alloc(old.cap() * 2);
        for i in t..b {
            new.write(i, old.read(i));
        }
        self.buf.store(Box::into_raw(new), Ordering::Release);
        // A stalled thief may still read the old buffer; keep it alive
        // until the deque drops.
        // SAFETY: `old_ptr` came from `Box::into_raw` (in `new` or a prior
        // `grow`) and is retired exactly once — `buf` no longer holds it.
        let old_box = unsafe { Box::from_raw(old_ptr) };
        let mut retired = self.retired.lock().unwrap(); // analyze:allow(hotpath-lock, hotpath-unwrap) — rare amortized growth path; job bodies catch panics, so the lock cannot be poisoned
        retired.push(old_box);
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Queued JobRefs are plain pointer words owned by their creating
        // construct (join/scope never returns before its jobs settle, and
        // the pool drains before dropping), so only the buffers need
        // freeing here; `retired` frees itself.
        let ptr = *self.buf.get_mut();
        // SAFETY: `buf` always holds a `Box::into_raw` pointer and nothing
        // else can free it; with `&mut self` no thief can be reading it.
        drop(unsafe { Box::from_raw(ptr) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::StackJob;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    /// Run every pushed job to completion so the StackJobs can be dropped.
    fn drain_inline(d: &Deque) {
        while let Some(job) = d.pop() {
            // SAFETY: every JobRef in these tests points at a StackJob that
            // outlives the deque and is executed exactly once.
            unsafe { job.execute() };
        }
    }

    #[test]
    fn owner_pops_lifo() {
        let order = Mutex::new(Vec::new());
        let jobs: Vec<StackJob<_, ()>> = (0..10usize)
            .map(|i| {
                let order = &order;
                StackJob::new(move || order.lock().unwrap().push(i))
            })
            .collect();
        let d = Deque::new();
        for j in &jobs {
            d.push(j.as_job_ref());
        }
        drain_inline(&d);
        assert_eq!(*order.lock().unwrap(), (0..10).rev().collect::<Vec<_>>());
        assert!(d.pop().is_none());
    }

    #[test]
    fn thief_steals_fifo() {
        let order = Mutex::new(Vec::new());
        let jobs: Vec<StackJob<_, ()>> = (0..10usize)
            .map(|i| {
                let order = &order;
                StackJob::new(move || order.lock().unwrap().push(i))
            })
            .collect();
        let d = Deque::new();
        for j in &jobs {
            d.push(j.as_job_ref());
        }
        std::thread::scope(|s| {
            s.spawn(|| loop {
                match d.steal() {
                    // SAFETY: a validated steal hands over sole ownership of
                    // a live StackJob; it is executed exactly once.
                    Steal::Success(job) => unsafe { job.execute() },
                    Steal::Abort => std::hint::spin_loop(),
                    Steal::Empty => break,
                }
            });
        });
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn growth_preserves_all_jobs() {
        // 10× the initial capacity forces several growth rounds.
        let n = INITIAL_CAP * 10;
        let hits = AtomicUsize::new(0);
        let jobs: Vec<StackJob<_, ()>> = (0..n)
            .map(|_| {
                let hits = &hits;
                StackJob::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let d = Deque::new();
        for j in &jobs {
            d.push(j.as_job_ref());
        }
        drain_inline(&d);
        assert_eq!(hits.load(Ordering::Relaxed), n);
    }

    /// The modeled publish edge: a normal push/steal hand-off must be
    /// race-free — the release in `push` and the acquire after the
    /// validating CAS in `steal` cover the closure and environment reads.
    #[cfg(feature = "racecheck")]
    #[test]
    fn push_steal_handoff_is_race_free() {
        let _guard = crate::racecheck::test_lock();
        crate::racecheck::take_races();
        let hits = AtomicUsize::new(0);
        let jobs: Vec<StackJob<_, ()>> = (0..32usize)
            .map(|_| {
                let hits = &hits;
                StackJob::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let d = Deque::new();
        for j in &jobs {
            d.push(j.as_job_ref());
        }
        std::thread::scope(|s| {
            s.spawn(|| loop {
                match d.steal() {
                    // SAFETY: a validated steal hands over sole ownership of
                    // a live StackJob; it is executed exactly once.
                    Steal::Success(job) => unsafe { job.execute() },
                    Steal::Abort => std::hint::spin_loop(),
                    Steal::Empty => break,
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
        let races = crate::racecheck::take_races();
        assert!(races.is_empty(), "validated steal raced: {races:?}");
    }

    /// Seeded broken steal: `push_racy` skips the modeled release (the
    /// moral equivalent of a `Relaxed` bottom store), so a thief executing
    /// the job reads the closure without a happens-before edge from the
    /// owner's write. The detector must report it with both file:line
    /// sites: the owner's construction write and the thief's executor read.
    #[cfg(feature = "racecheck")]
    #[test]
    fn seeded_racy_push_is_caught_with_both_sites() {
        let _guard = crate::racecheck::test_lock();
        crate::racecheck::take_races();
        let hits = AtomicUsize::new(0);
        let job = {
            let hits = &hits;
            StackJob::new(move || {
                hits.fetch_add(1, Ordering::Relaxed);
            })
        };
        let d = Deque::new();
        d.push_racy(job.as_job_ref());
        std::thread::scope(|s| {
            s.spawn(|| loop {
                match d.steal() {
                    Steal::Success(stolen) => {
                        // SAFETY: the lone StackJob is live and executed once.
                        unsafe { stolen.execute() };
                        break;
                    }
                    _ => std::hint::spin_loop(),
                }
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        let races = crate::racecheck::take_races();
        let hit = races
            .iter()
            .find(|r| r.var == "StackJob::func" && r.first.op == "write" && r.second.op == "read")
            .unwrap_or_else(|| panic!("seeded racy push not detected: {races:?}"));
        // Both conflicting sites, file:line each — the owner-side write in
        // StackJob::new and the thief-side read in execute_erased.
        assert!(hit.first.location.file().ends_with("registry.rs"));
        assert!(hit.second.location.file().ends_with("registry.rs"));
        assert_ne!(
            hit.first.location.line(),
            hit.second.location.line(),
            "distinct conflicting sites expected"
        );
        assert_ne!(hit.first.tid, hit.second.tid);
    }

    #[test]
    fn owner_and_thieves_partition_the_jobs() {
        // Concurrent pops and steals must execute every job exactly once;
        // StackJob's "executed twice" panic catches duplication, the count
        // catches loss.
        let n = 4096usize;
        let hits = AtomicUsize::new(0);
        let jobs: Vec<StackJob<_, ()>> = (0..n)
            .map(|_| {
                let hits = &hits;
                StackJob::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let d = Deque::new();
        std::thread::scope(|s| {
            let thieves: Vec<_> = (0..3)
                .map(|_| {
                    s.spawn(|| {
                        let mut got = 0usize;
                        let mut dry = 0;
                        while dry < 1000 {
                            match d.steal() {
                                Steal::Success(job) => {
                                    // SAFETY: validated steal — sole owner of
                                    // a live StackJob, executed exactly once.
                                    unsafe { job.execute() };
                                    got += 1;
                                    dry = 0;
                                }
                                Steal::Abort => {}
                                Steal::Empty => {
                                    dry += 1;
                                    std::thread::yield_now();
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            // Owner: interleave pushes with occasional pops.
            let mut popped = 0usize;
            for (i, j) in jobs.iter().enumerate() {
                d.push(j.as_job_ref());
                if i % 3 == 0 {
                    if let Some(job) = d.pop() {
                        // SAFETY: popped jobs are live StackJobs owned by this
                        // scope, each executed exactly once.
                        unsafe { job.execute() };
                        popped += 1;
                    }
                }
            }
            drain_inline(&d);
            let stolen: usize = thieves.into_iter().map(|t| t.join().unwrap()).sum();
            assert!(popped + stolen <= n);
        });
        assert_eq!(hits.load(Ordering::Relaxed), n);
    }
}
