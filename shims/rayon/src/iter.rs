//! Parallel iterators over splittable producers.
//!
//! [`Par`] wraps a [`Producer`]: a splittable description of a data source
//! (range, slice, chunked slice, owned vector) plus a stack of adapters
//! (`map`, `zip`, `enumerate`, `filter`, ...). Terminal operations
//! recursively split the producer in half down to a leaf size and dispatch
//! the halves through [`crate::join`], so the work really runs on the
//! current pool's workers, chunked.
//!
//! **Determinism:** the split tree is a function of the input length and
//! the `with_min_len` hint only — never of the worker count. Combined with
//! index-preserving `collect` and a fixed reduction tree, every terminal op
//! returns bit-identical results at any thread count (including 1), even
//! for non-associative floating-point operators. This is the property the
//! workspace's cross-thread-count determinism suite pins down.
//!
//! Methods are inherent (not a trait impl), so rayon-specific signatures
//! such as `reduce(identity, op)` never collide with
//! `std::iter::Iterator`.

use std::cmp::Ordering as CmpOrdering;
use std::mem::ManuallyDrop;
use std::sync::Arc;

/// Upper bound on the number of leaves a terminal op splits into. Fixed (not
/// worker-count-dependent) so the execution tree is identical at every pool
/// width; 512 leaves keep far more tasks than workers available for load
/// balancing without drowning the queue.
const MAX_LEAVES: usize = 512;

/// Leaf size for a terminal op: at least the `with_min_len` hint, and large
/// enough that at most [`MAX_LEAVES`] leaves exist.
#[inline]
fn leaf_size(len: usize, min_len: usize) -> usize {
    min_len.max(len.div_ceil(MAX_LEAVES)).max(1)
}

/// A splittable, exactly-sized description of a parallel data source.
pub trait Producer: Sized + Send {
    type Item: Send;
    type IntoIter: Iterator<Item = Self::Item>;

    /// Whether `len()` equals the number of items actually yielded (false
    /// for `filter`-like adapters, where `len` is only an upper bound used
    /// to balance splits).
    const EXACT: bool;

    /// Number of items (exact for `EXACT` producers, upper bound otherwise).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Split into `[0, index)` and `[index, len)`. `index` is in `(0, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Sequential iterator over this producer's items.
    fn into_iter(self) -> Self::IntoIter;
}

/// A parallel iterator: a producer plus a granularity hint.
pub struct Par<P> {
    producer: P,
    min_len: usize,
}

impl<P: Producer> Par<P> {
    #[inline]
    fn new(producer: P) -> Self {
        Par {
            producer,
            min_len: 1,
        }
    }

    // ---- adapters -------------------------------------------------------

    #[inline]
    pub fn map<O, F>(self, f: F) -> Par<MapP<P, F>>
    where
        O: Send,
        F: Fn(P::Item) -> O + Send + Sync,
    {
        let base = MapP {
            base: self.producer,
            f: Arc::new(f),
        };
        Par {
            producer: base,
            min_len: self.min_len,
        }
    }

    #[inline]
    pub fn filter<F>(self, f: F) -> Par<FilterP<P, F>>
    where
        F: Fn(&P::Item) -> bool + Send + Sync,
    {
        let p = FilterP {
            base: self.producer,
            f: Arc::new(f),
        };
        Par {
            producer: p,
            min_len: self.min_len,
        }
    }

    #[inline]
    pub fn filter_map<O, F>(self, f: F) -> Par<FilterMapP<P, F>>
    where
        O: Send,
        F: Fn(P::Item) -> Option<O> + Send + Sync,
    {
        let p = FilterMapP {
            base: self.producer,
            f: Arc::new(f),
        };
        Par {
            producer: p,
            min_len: self.min_len,
        }
    }

    #[inline]
    pub fn flat_map<O, F>(self, f: F) -> Par<FlatMapP<P, F>>
    where
        O: IntoIterator,
        O::Item: Send,
        F: Fn(P::Item) -> O + Send + Sync,
    {
        let p = FlatMapP {
            base: self.producer,
            f: Arc::new(f),
        };
        Par {
            producer: p,
            min_len: self.min_len,
        }
    }

    #[inline]
    pub fn zip<Q: Producer>(self, other: Par<Q>) -> Par<ZipP<P, Q>> {
        Par {
            producer: ZipP {
                a: self.producer,
                b: other.producer,
            },
            min_len: self.min_len.max(other.min_len),
        }
    }

    #[inline]
    pub fn enumerate(self) -> Par<EnumerateP<P>> {
        // Split offsets assume the base yields exactly `len` items; on a
        // filtered base the indices would silently come out wrong. Real
        // rayon rejects this at compile time (IndexedParallelIterator);
        // the shim rejects it loudly at runtime.
        assert!(
            P::EXACT,
            "enumerate requires an exactly-sized parallel iterator \
             (not filter/filter_map/flat_map output)"
        );
        Par {
            producer: EnumerateP {
                base: self.producer,
                offset: 0,
            },
            min_len: self.min_len,
        }
    }

    #[inline]
    pub fn cloned<'a, T>(self) -> Par<ClonedP<P>>
    where
        T: 'a + Clone + Send + Sync,
        P: Producer<Item = &'a T>,
    {
        Par {
            producer: ClonedP(self.producer),
            min_len: self.min_len,
        }
    }

    #[inline]
    pub fn copied<'a, T>(self) -> Par<CopiedP<P>>
    where
        T: 'a + Copy + Send + Sync,
        P: Producer<Item = &'a T>,
    {
        Par {
            producer: CopiedP(self.producer),
            min_len: self.min_len,
        }
    }

    /// Granularity hint: leaves of the split tree hold at least `min`
    /// items. Part of the deterministic tree shape (not scheduling advice).
    #[inline]
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min.max(1));
        self
    }

    /// Accepted for API compatibility; the fixed [`MAX_LEAVES`] fan-out
    /// already bounds leaf sizes from above.
    #[inline]
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    // ---- parallel terminal ops ------------------------------------------

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        let leaf = leaf_size(self.producer.len(), self.min_len);
        for_each_rec(self.producer, leaf, &f);
    }

    pub fn collect<C>(self) -> C
    where
        C: FromParallelIterator<P::Item>,
    {
        C::from_par(self)
    }

    /// Rayon-style reduce: combine from an identity element, over a fixed
    /// binary tree.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        let leaf = leaf_size(self.producer.len(), self.min_len);
        reduce_rec(self.producer, leaf, &identity, &op)
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let leaf = leaf_size(self.producer.len(), self.min_len);
        sum_rec(self.producer, leaf)
    }

    pub fn count(self) -> usize {
        let leaf = leaf_size(self.producer.len(), self.min_len);
        count_rec(self.producer, leaf)
    }

    pub fn min_by<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> CmpOrdering + Send + Sync,
    {
        let leaf = leaf_size(self.producer.len(), self.min_len);
        // Keep the left candidate on ties, matching `Iterator::min_by`'s
        // first-wins semantics over the in-order tree.
        select_rec(self.producer, leaf, &|a, b| {
            matches!(f(b, a), CmpOrdering::Less)
        })
    }

    pub fn max_by<F>(self, f: F) -> Option<P::Item>
    where
        F: Fn(&P::Item, &P::Item) -> CmpOrdering + Send + Sync,
    {
        let leaf = leaf_size(self.producer.len(), self.min_len);
        // Keep the right candidate on ties (`Iterator::max_by` is last-wins).
        select_rec(self.producer, leaf, &|a, b| {
            !matches!(f(b, a), CmpOrdering::Less)
        })
    }

    pub fn min_by_key<K, F>(self, f: F) -> Option<P::Item>
    where
        K: Ord,
        F: Fn(&P::Item) -> K + Send + Sync,
    {
        let leaf = leaf_size(self.producer.len(), self.min_len);
        select_rec(self.producer, leaf, &|a, b| f(b) < f(a))
    }

    pub fn max_by_key<K, F>(self, f: F) -> Option<P::Item>
    where
        K: Ord,
        F: Fn(&P::Item) -> K + Send + Sync,
    {
        let leaf = leaf_size(self.producer.len(), self.min_len);
        select_rec(self.producer, leaf, &|a, b| f(b) >= f(a))
    }

    // ---- sequential terminal ops ----------------------------------------
    //
    // Short-circuiting searches: evaluated in order on the calling thread
    // (they are off every hot path in this workspace, and sequential
    // evaluation keeps `position_any` indices exact).

    pub fn any<F: FnMut(P::Item) -> bool>(self, f: F) -> bool {
        let mut f = f;
        self.producer.into_iter().any(&mut f)
    }

    pub fn all<F: FnMut(P::Item) -> bool>(self, f: F) -> bool {
        let mut f = f;
        self.producer.into_iter().all(&mut f)
    }

    /// Rayon's `find_any`: any matching element is acceptable; the shim
    /// returns the first.
    pub fn find_any<F: FnMut(&P::Item) -> bool>(self, f: F) -> Option<P::Item> {
        let mut f = f;
        self.producer.into_iter().find(|x| f(x))
    }

    pub fn position_any<F: FnMut(P::Item) -> bool>(self, f: F) -> Option<usize> {
        let mut f = f;
        self.producer.into_iter().position(&mut f)
    }
}

// ---- recursive drivers ---------------------------------------------------

fn for_each_rec<P, F>(p: P, leaf: usize, f: &F)
where
    P: Producer,
    F: Fn(P::Item) + Send + Sync,
{
    let len = p.len();
    if len <= leaf {
        p.into_iter().for_each(f);
        return;
    }
    let (l, r) = p.split_at(len / 2);
    crate::join(|| for_each_rec(l, leaf, f), || for_each_rec(r, leaf, f));
}

fn reduce_rec<P, ID, OP>(p: P, leaf: usize, identity: &ID, op: &OP) -> P::Item
where
    P: Producer,
    ID: Fn() -> P::Item + Send + Sync,
    OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
{
    let len = p.len();
    if len <= leaf {
        return p.into_iter().fold(identity(), op);
    }
    let (l, r) = p.split_at(len / 2);
    let (a, b) = crate::join(
        || reduce_rec(l, leaf, identity, op),
        || reduce_rec(r, leaf, identity, op),
    );
    op(a, b)
}

fn sum_rec<P, S>(p: P, leaf: usize) -> S
where
    P: Producer,
    S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
{
    let len = p.len();
    if len <= leaf {
        return p.into_iter().sum();
    }
    let (l, r) = p.split_at(len / 2);
    let (a, b) = crate::join(|| sum_rec::<_, S>(l, leaf), || sum_rec::<_, S>(r, leaf));
    [a, b].into_iter().sum()
}

fn count_rec<P: Producer>(p: P, leaf: usize) -> usize {
    let len = p.len();
    if len <= leaf {
        return p.into_iter().count();
    }
    let (l, r) = p.split_at(len / 2);
    let (a, b) = crate::join(|| count_rec(l, leaf), || count_rec(r, leaf));
    a + b
}

/// Generic min/max over the in-order tree. `replace(cur, cand)` returns
/// true when the right-hand candidate should replace the left-hand one.
fn select_rec<P, R>(p: P, leaf: usize, replace: &R) -> Option<P::Item>
where
    P: Producer,
    R: Fn(&P::Item, &P::Item) -> bool + Send + Sync,
{
    let len = p.len();
    if len <= leaf {
        let mut best: Option<P::Item> = None;
        for x in p.into_iter() {
            best = match best {
                None => Some(x),
                Some(cur) => {
                    if replace(&cur, &x) {
                        Some(x)
                    } else {
                        Some(cur)
                    }
                }
            };
        }
        return best;
    }
    let (l, r) = p.split_at(len / 2);
    let (a, b) = crate::join(
        || select_rec(l, leaf, replace),
        || select_rec(r, leaf, replace),
    );
    match (a, b) {
        (Some(x), Some(y)) => Some(if replace(&x, &y) { y } else { x }),
        (x, y) => x.or(y),
    }
}

/// Raw pointer wrapper for disjoint index-preserving writes across tasks.
struct SendPtr<T>(*mut T);
// SAFETY: every task derives writes from a distinct index range of one
// allocation, so cross-thread use never aliases (see collect_exact_rec).
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: same disjointness argument; shared references only copy the
// pointer value, never dereference it concurrently at the same index.
unsafe impl<T: Send> Sync for SendPtr<T> {}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

/// Write `p`'s items into `out[offset..offset + len]`.
///
/// Panic-safety invariant (inductive): on normal return the whole range is
/// initialized; on unwind the whole range has been dropped/never written.
/// Leaves clean their own partial writes via a guard; interior nodes drop
/// the fully-written sibling range when the other side unwinds. `Copy`-ish
/// item types (`!needs_drop`) skip all of this.
fn collect_exact_rec<P: Producer>(p: P, leaf: usize, offset: usize, out: SendPtr<P::Item>) {
    let len = p.len();
    if len <= leaf {
        if !std::mem::needs_drop::<P::Item>() {
            let mut i = offset;
            for x in p.into_iter() {
                // SAFETY: EXACT producers yield exactly `len` items and
                // every leaf owns the disjoint range `[offset, offset+len)`
                // of an allocation sized to the root length.
                unsafe { out.0.add(i).write(x) };
                i += 1;
            }
            debug_assert_eq!(i, offset + len, "EXACT producer lied about its length");
            return;
        }
        struct PartialGuard<T> {
            out: SendPtr<T>,
            start: usize,
            cur: usize,
        }
        impl<T> Drop for PartialGuard<T> {
            fn drop(&mut self) {
                // SAFETY: `[start, cur)` was initialized by this leaf and,
                // mid-unwind, will never be read or set_len'd.
                unsafe {
                    std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                        self.out.0.add(self.start),
                        self.cur - self.start,
                    ))
                };
            }
        }
        let mut guard = PartialGuard {
            out,
            start: offset,
            cur: offset,
        };
        for x in p.into_iter() {
            // SAFETY: as in the no-drop path above.
            unsafe { out.0.add(guard.cur).write(x) };
            guard.cur += 1;
        }
        debug_assert_eq!(
            guard.cur,
            offset + len,
            "EXACT producer lied about its length"
        );
        std::mem::forget(guard);
        return;
    }
    let mid = len / 2;
    let (l, r) = p.split_at(mid);
    if !std::mem::needs_drop::<P::Item>() {
        crate::join(
            || collect_exact_rec(l, leaf, offset, out),
            || collect_exact_rec(r, leaf, offset + mid, out),
        );
        return;
    }
    let (ra, rb) = crate::join(
        || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                collect_exact_rec(l, leaf, offset, out)
            }))
        },
        || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                collect_exact_rec(r, leaf, offset + mid, out)
            }))
        },
    );
    match (ra, rb) {
        (Ok(()), Ok(())) => {}
        (Err(payload), Ok(())) => {
            // SAFETY: the Ok right side fully initialized its range (the
            // invariant above); after the panic it will never be read.
            unsafe {
                std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(
                    out.0.add(offset + mid),
                    len - mid,
                ))
            };
            std::panic::resume_unwind(payload);
        }
        (Ok(()), Err(payload)) => {
            // SAFETY: mirror case — the Ok left side fully initialized
            // `[offset, offset+mid)` and the range is dead after the panic.
            unsafe {
                std::ptr::drop_in_place(std::ptr::slice_from_raw_parts_mut(out.0.add(offset), mid))
            };
            std::panic::resume_unwind(payload);
        }
        // Both sides cleaned their own ranges; propagate the left panic.
        (Err(payload), Err(_)) => std::panic::resume_unwind(payload),
    }
}

fn collect_concat_rec<P: Producer>(p: P, leaf: usize) -> Vec<P::Item> {
    let len = p.len();
    if len <= leaf {
        return p.into_iter().collect();
    }
    let (l, r) = p.split_at(len / 2);
    let (mut a, mut b) = crate::join(
        || collect_concat_rec(l, leaf),
        || collect_concat_rec(r, leaf),
    );
    a.append(&mut b);
    a
}

/// Collections a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par<P: Producer<Item = T>>(par: Par<P>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par<P: Producer<Item = T>>(par: Par<P>) -> Vec<T> {
        let len = par.producer.len();
        let leaf = leaf_size(len, par.min_len);
        if P::EXACT {
            // Index-preserving parallel write into a pre-sized buffer.
            let mut out: Vec<T> = Vec::with_capacity(len);
            let ptr = SendPtr(out.as_mut_ptr());
            collect_exact_rec(par.producer, leaf, 0, ptr);
            // SAFETY: every index in [0, len) was initialized exactly once
            // by the disjoint leaf ranges above.
            unsafe { out.set_len(len) };
            out
        } else {
            // Unknown yield count (filter & friends): per-leaf vectors
            // concatenated in order.
            collect_concat_rec(par.producer, leaf)
        }
    }
}

// ---- adapter producers ----------------------------------------------------

pub struct MapP<P, F> {
    base: P,
    f: Arc<F>,
}

pub struct MapIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<O, I: Iterator, F: Fn(I::Item) -> O> Iterator for MapIter<I, F> {
    type Item = O;
    #[inline]
    fn next(&mut self) -> Option<O> {
        self.base.next().map(|x| (self.f)(x))
    }
}

impl<O, P, F> Producer for MapP<P, F>
where
    O: Send,
    P: Producer,
    F: Fn(P::Item) -> O + Send + Sync,
{
    type Item = O;
    type IntoIter = MapIter<P::IntoIter, F>;
    const EXACT: bool = P::EXACT;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapP {
                base: l,
                f: Arc::clone(&self.f),
            },
            MapP { base: r, f: self.f },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        MapIter {
            base: self.base.into_iter(),
            f: self.f,
        }
    }
}

pub struct FilterP<P, F> {
    base: P,
    f: Arc<F>,
}

pub struct FilterIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<I: Iterator, F: Fn(&I::Item) -> bool> Iterator for FilterIter<I, F> {
    type Item = I::Item;
    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.base.by_ref().find(|x| (self.f)(x))
    }
}

impl<P, F> Producer for FilterP<P, F>
where
    P: Producer,
    F: Fn(&P::Item) -> bool + Send + Sync,
{
    type Item = P::Item;
    type IntoIter = FilterIter<P::IntoIter, F>;
    const EXACT: bool = false;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterP {
                base: l,
                f: Arc::clone(&self.f),
            },
            FilterP { base: r, f: self.f },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        FilterIter {
            base: self.base.into_iter(),
            f: self.f,
        }
    }
}

pub struct FilterMapP<P, F> {
    base: P,
    f: Arc<F>,
}

pub struct FilterMapIter<I, F> {
    base: I,
    f: Arc<F>,
}

impl<O, I: Iterator, F: Fn(I::Item) -> Option<O>> Iterator for FilterMapIter<I, F> {
    type Item = O;
    #[inline]
    fn next(&mut self) -> Option<O> {
        loop {
            match self.base.next() {
                None => return None,
                Some(x) => {
                    if let Some(o) = (self.f)(x) {
                        return Some(o);
                    }
                }
            }
        }
    }
}

impl<O, P, F> Producer for FilterMapP<P, F>
where
    O: Send,
    P: Producer,
    F: Fn(P::Item) -> Option<O> + Send + Sync,
{
    type Item = O;
    type IntoIter = FilterMapIter<P::IntoIter, F>;
    const EXACT: bool = false;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FilterMapP {
                base: l,
                f: Arc::clone(&self.f),
            },
            FilterMapP { base: r, f: self.f },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        FilterMapIter {
            base: self.base.into_iter(),
            f: self.f,
        }
    }
}

pub struct FlatMapP<P, F> {
    base: P,
    f: Arc<F>,
}

pub struct FlatMapIter<I, O: IntoIterator, F> {
    base: I,
    cur: Option<O::IntoIter>,
    f: Arc<F>,
}

impl<I, O, F> Iterator for FlatMapIter<I, O, F>
where
    I: Iterator,
    O: IntoIterator,
    F: Fn(I::Item) -> O,
{
    type Item = O::Item;
    fn next(&mut self) -> Option<O::Item> {
        loop {
            if let Some(cur) = &mut self.cur {
                if let Some(x) = cur.next() {
                    return Some(x);
                }
            }
            match self.base.next() {
                None => return None,
                Some(x) => self.cur = Some((self.f)(x).into_iter()),
            }
        }
    }
}

impl<O, P, F> Producer for FlatMapP<P, F>
where
    O: IntoIterator,
    O::Item: Send,
    P: Producer,
    F: Fn(P::Item) -> O + Send + Sync,
{
    type Item = O::Item;
    type IntoIter = FlatMapIter<P::IntoIter, O, F>;
    const EXACT: bool = false;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            FlatMapP {
                base: l,
                f: Arc::clone(&self.f),
            },
            FlatMapP { base: r, f: self.f },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        FlatMapIter {
            base: self.base.into_iter(),
            cur: None,
            f: self.f,
        }
    }
}

pub struct ZipP<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipP<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;
    // Exactness holds because split indices never exceed min(len_a, len_b).
    const EXACT: bool = A::EXACT && B::EXACT;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (al, ar) = self.a.split_at(index);
        let (bl, br) = self.b.split_at(index);
        (ZipP { a: al, b: bl }, ZipP { a: ar, b: br })
    }

    fn into_iter(self) -> Self::IntoIter {
        self.a.into_iter().zip(self.b.into_iter())
    }
}

pub struct EnumerateP<P> {
    base: P,
    offset: usize,
}

pub struct EnumerateIter<I> {
    base: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateIter<I> {
    type Item = (usize, I::Item);
    #[inline]
    fn next(&mut self) -> Option<(usize, I::Item)> {
        let x = self.base.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }
}

impl<P: Producer> Producer for EnumerateP<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateIter<P::IntoIter>;
    const EXACT: bool = P::EXACT;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            EnumerateP {
                base: l,
                offset: self.offset,
            },
            EnumerateP {
                base: r,
                offset: self.offset + index,
            },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        EnumerateIter {
            base: self.base.into_iter(),
            next: self.offset,
        }
    }
}

pub struct ClonedP<P>(P);

impl<'a, T, P> Producer for ClonedP<P>
where
    T: 'a + Clone + Send + Sync,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Cloned<P::IntoIter>;
    const EXACT: bool = P::EXACT;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (ClonedP(l), ClonedP(r))
    }

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter().cloned()
    }
}

pub struct CopiedP<P>(P);

impl<'a, T, P> Producer for CopiedP<P>
where
    T: 'a + Copy + Send + Sync,
    P: Producer<Item = &'a T>,
{
    type Item = T;
    type IntoIter = std::iter::Copied<P::IntoIter>;
    const EXACT: bool = P::EXACT;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (CopiedP(l), CopiedP(r))
    }

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter().copied()
    }
}

// ---- base producers -------------------------------------------------------

pub struct SliceP<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for SliceP<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    const EXACT: bool = true;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at(index);
        (SliceP(l), SliceP(r))
    }

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

pub struct SliceMutP<'a, T>(&'a mut [T]);

impl<'a, T: Send> Producer for SliceMutP<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    const EXACT: bool = true;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.0.split_at_mut(index);
        (SliceMutP(l), SliceMutP(r))
    }

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

pub struct ChunksP<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for ChunksP<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Chunks<'a, T>;
    const EXACT: bool = true;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index * self.size);
        (
            ChunksP {
                slice: l,
                size: self.size,
            },
            ChunksP {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks(self.size)
    }
}

pub struct ChunksMutP<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> Producer for ChunksMutP<'a, T> {
    type Item = &'a mut [T];
    type IntoIter = std::slice::ChunksMut<'a, T>;
    const EXACT: bool = true;

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index * self.size);
        (
            ChunksMutP {
                slice: l,
                size: self.size,
            },
            ChunksMutP {
                slice: r,
                size: self.size,
            },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.chunks_mut(self.size)
    }
}

pub struct WindowsP<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> Producer for WindowsP<'a, T> {
    type Item = &'a [T];
    type IntoIter = std::slice::Windows<'a, T>;
    const EXACT: bool = true;

    fn len(&self) -> usize {
        self.slice.len().saturating_sub(self.size - 1)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        // Window i covers slice[i..i + size); the left part needs elements
        // up to index + size - 1, the right part starts at element index.
        (
            WindowsP {
                slice: &self.slice[..index + self.size - 1],
                size: self.size,
            },
            WindowsP {
                slice: &self.slice[index..],
                size: self.size,
            },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        self.slice.windows(self.size)
    }
}

/// Integer types usable as parallel range endpoints.
pub trait RangeInt: Copy + Send + Sized {
    fn offset(self, n: usize) -> Self;
    fn distance(lo: Self, hi: Self) -> usize;
}

/// Unsigned endpoints: a split index `n` never exceeds the range length, so
/// `start + n` stays within `[start, end]` and the narrowing cast is exact.
macro_rules! impl_range_int_unsigned {
    ($($t:ty),*) => {$(
        impl RangeInt for $t {
            #[inline]
            fn offset(self, n: usize) -> Self {
                self + n as $t
            }
            #[inline]
            fn distance(lo: Self, hi: Self) -> usize {
                if hi > lo { (hi - lo) as usize } else { 0 }
            }
        }
    )*};
}

/// Signed endpoints go through a wider intermediate: a range like
/// `i32::MIN..i32::MAX` is longer than `$t::MAX`, so `n as $t` would wrap
/// (and the resulting bogus split would break the EXACT-producer contract
/// that `collect`'s unsafe pre-sized writes rely on).
macro_rules! impl_range_int_signed {
    ($($t:ty => $wide:ty),*) => {$(
        impl RangeInt for $t {
            #[inline]
            fn offset(self, n: usize) -> Self {
                (self as $wide + n as $wide) as $t
            }
            #[inline]
            fn distance(lo: Self, hi: Self) -> usize {
                if hi > lo { (hi as $wide - lo as $wide) as usize } else { 0 }
            }
        }
    )*};
}

impl_range_int_unsigned!(u16, u32, u64, usize);
impl_range_int_signed!(i32 => i64, i64 => i128);

pub struct RangeP<T> {
    start: T,
    end: T,
}

impl<T> Producer for RangeP<T>
where
    T: RangeInt,
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type IntoIter = std::ops::Range<T>;
    const EXACT: bool = true;

    fn len(&self) -> usize {
        T::distance(self.start, self.end)
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.start.offset(index);
        (
            RangeP {
                start: self.start,
                end: mid,
            },
            RangeP {
                start: mid,
                end: self.end,
            },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        self.start..self.end
    }
}

/// Backing buffer of a consumed `Vec`, deallocated (without dropping
/// elements — ownership of those moved into the producers) when the last
/// split producer finishes.
struct VecBuf<T> {
    ptr: *mut T,
    cap: usize,
}

// SAFETY: VecBuf only carries the allocation; element accesses go through
// producers/iterators that each own a disjoint index range.
unsafe impl<T: Send> Send for VecBuf<T> {}
// SAFETY: shared access is limited to reading `ptr`/`cap`; the disjoint
// range ownership above prevents concurrent element aliasing.
unsafe impl<T: Send> Sync for VecBuf<T> {}

impl<T> Drop for VecBuf<T> {
    fn drop(&mut self) {
        // SAFETY: reconstitute with len 0: elements were moved out (or
        // dropped) by the producers/iterators that owned their ranges.
        unsafe { drop(Vec::from_raw_parts(self.ptr, 0, self.cap)) };
    }
}

/// Owning producer over a consumed `Vec<T>`: each split owns a disjoint
/// index range and moves elements out with `ptr::read`.
pub struct VecP<T: Send> {
    buf: Arc<VecBuf<T>>,
    start: usize,
    end: usize,
}

impl<T: Send> Drop for VecP<T> {
    fn drop(&mut self) {
        // Dropped without being iterated (e.g. mid-panic unwind): drop the
        // owned range in place.
        let slice = std::ptr::slice_from_raw_parts_mut(
            // SAFETY: start ≤ cap, so the offset stays in the allocation.
            unsafe { self.buf.ptr.add(self.start) },
            self.end - self.start,
        );
        // SAFETY: this producer exclusively owns [start, end) and none of
        // those elements were moved out (into_iter/split_at skip Drop).
        unsafe { std::ptr::drop_in_place(slice) };
    }
}

pub struct VecIter<T: Send> {
    buf: Arc<VecBuf<T>>,
    cur: usize,
    end: usize,
}

impl<T: Send> Iterator for VecIter<T> {
    type Item = T;
    #[inline]
    fn next(&mut self) -> Option<T> {
        if self.cur == self.end {
            return None;
        }
        // SAFETY: this iterator exclusively owns [cur, end); each element
        // is read exactly once.
        let v = unsafe { self.buf.ptr.add(self.cur).read() };
        self.cur += 1;
        Some(v)
    }
}

impl<T: Send> Drop for VecIter<T> {
    fn drop(&mut self) {
        let slice = std::ptr::slice_from_raw_parts_mut(
            // SAFETY: cur ≤ cap, so the offset stays in the allocation.
            unsafe { self.buf.ptr.add(self.cur) },
            self.end - self.cur,
        );
        // SAFETY: [cur, end) was never yielded; drop those elements.
        unsafe { std::ptr::drop_in_place(slice) };
    }
}

impl<T: Send> Producer for VecP<T> {
    type Item = T;
    type IntoIter = VecIter<T>;
    const EXACT: bool = true;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let this = ManuallyDrop::new(self);
        // SAFETY: move the Arc out of the forgotten `this`; its Drop (which
        // would drop the range's elements) is skipped, and the two children
        // partition the range exactly.
        let buf = unsafe { std::ptr::read(&this.buf) };
        let mid = this.start + index;
        (
            VecP {
                buf: Arc::clone(&buf),
                start: this.start,
                end: mid,
            },
            VecP {
                buf,
                start: mid,
                end: this.end,
            },
        )
    }

    fn into_iter(self) -> Self::IntoIter {
        let this = ManuallyDrop::new(self);
        // SAFETY: as in `split_at`: ownership of [start, end) transfers to
        // the iterator, `this`'s Drop is skipped.
        let buf = unsafe { std::ptr::read(&this.buf) };
        VecIter {
            buf,
            cur: this.start,
            end: this.end,
        }
    }
}

// ---- entry-point traits ---------------------------------------------------

/// `into_par_iter()` for owned sources (vectors and integer ranges).
pub trait IntoParallelIterator {
    type Item: Send;
    type Producer: Producer<Item = Self::Item>;

    fn into_par_iter(self) -> Par<Self::Producer>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Producer = VecP<T>;

    fn into_par_iter(self) -> Par<VecP<T>> {
        let mut v = ManuallyDrop::new(self);
        let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
        Par::new(VecP {
            buf: Arc::new(VecBuf { ptr, cap }),
            start: 0,
            end: len,
        })
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    T: RangeInt,
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Producer = RangeP<T>;

    fn into_par_iter(self) -> Par<RangeP<T>> {
        Par::new(RangeP {
            start: self.start,
            end: self.end,
        })
    }
}

/// `par_iter()` on `&self` for slices and vectors.
pub trait IntoParallelRefIterator<'data> {
    type Item: Send + 'data;
    type Producer: Producer<Item = Self::Item>;

    fn par_iter(&'data self) -> Par<Self::Producer>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Producer = SliceP<'data, T>;

    fn par_iter(&'data self) -> Par<SliceP<'data, T>> {
        Par::new(SliceP(self))
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Producer = SliceP<'data, T>;

    fn par_iter(&'data self) -> Par<SliceP<'data, T>> {
        Par::new(SliceP(self))
    }
}

/// `par_iter_mut()` on `&mut self` for slices and vectors.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: Send + 'data;
    type Producer: Producer<Item = Self::Item>;

    fn par_iter_mut(&'data mut self) -> Par<Self::Producer>;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Producer = SliceMutP<'data, T>;

    fn par_iter_mut(&'data mut self) -> Par<SliceMutP<'data, T>> {
        Par::new(SliceMutP(self))
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Producer = SliceMutP<'data, T>;

    fn par_iter_mut(&'data mut self) -> Par<SliceMutP<'data, T>> {
        Par::new(SliceMutP(self))
    }
}

/// Chunked views of slices, rayon-style.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksP<'_, T>>;
    fn par_windows(&self, window_size: usize) -> Par<WindowsP<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksP<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Par::new(ChunksP {
            slice: self,
            size: chunk_size,
        })
    }

    fn par_windows(&self, window_size: usize) -> Par<WindowsP<'_, T>> {
        assert!(window_size > 0, "window size must be positive");
        Par::new(WindowsP {
            slice: self,
            size: window_size,
        })
    }
}

/// Mutable chunked views and the parallel sort family, rayon-style.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutP<'_, T>>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_by<F: Fn(&T, &T) -> CmpOrdering + Sync>(&mut self, compare: F);
    fn par_sort_unstable_by<F: Fn(&T, &T) -> CmpOrdering + Sync>(&mut self, compare: F);
    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F);
    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F);
}

/// Sequential cutoff and fixed chunk width for the parallel sorts. The
/// chunk width is constant (not worker-count-derived) so the pre-sorted
/// runs — and hence the full output permutation even under non-total
/// comparators — are identical at every thread count.
const SORT_CHUNK: usize = 16 * 1024;

/// Parallel sort: pre-sort fixed-width disjoint chunks in parallel, then
/// let `slice::sort_by` (a run-detecting stable mergesort) merge the sorted
/// runs — the comparison-heavy O(n log n) phase parallelizes, the merge
/// pass is O(n log k) over k runs. No unsafe, panic-safe, and stable
/// whenever `chunk_sort` is.
fn par_sort_impl<T: Send, F>(data: &mut [T], compare: &F, stable_chunks: bool)
where
    F: Fn(&T, &T) -> CmpOrdering + Sync,
{
    if data.len() > 2 * SORT_CHUNK {
        data.par_chunks_mut(SORT_CHUNK).for_each(|chunk| {
            if stable_chunks {
                chunk.sort_by(compare);
            } else {
                chunk.sort_unstable_by(compare);
            }
        });
    }
    data.sort_by(compare);
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutP<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be positive");
        Par::new(ChunksMutP {
            slice: self,
            size: chunk_size,
        })
    }

    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &T::cmp, true);
    }

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_sort_impl(self, &T::cmp, false);
    }

    fn par_sort_by<F: Fn(&T, &T) -> CmpOrdering + Sync>(&mut self, compare: F) {
        par_sort_impl(self, &compare, true);
    }

    fn par_sort_unstable_by<F: Fn(&T, &T) -> CmpOrdering + Sync>(&mut self, compare: F) {
        par_sort_impl(self, &compare, false);
    }

    fn par_sort_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
        par_sort_impl(self, &|a, b| key(a).cmp(&key(b)), true);
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
        par_sort_impl(self, &|a, b| key(a).cmp(&key(b)), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..50_000).collect();
        let got: Vec<u64> = xs.par_iter().map(|&x| x * 3).collect();
        let want: Vec<u64> = xs.iter().map(|&x| x * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn filter_collect_preserves_order() {
        let got: Vec<u32> = (0..100_000u32)
            .into_par_iter()
            .filter(|&x| x % 7 == 0)
            .collect();
        let want: Vec<u32> = (0..100_000).filter(|&x| x % 7 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn vec_into_par_iter_moves_noncopy_items() {
        let strings: Vec<String> = (0..10_000).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = strings.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens.len(), 10_000);
        assert_eq!(lens[0], 1);
        assert_eq!(lens[9_999], 4);
    }

    #[test]
    fn vec_producer_drops_unconsumed_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        DROPS.store(0, Ordering::Relaxed);
        {
            let v: Vec<Counted> = (0..100).map(|_| Counted).collect();
            let par = v.into_par_iter();
            drop(par); // never iterated
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zip_enumerate_for_each_writes_disjoint() {
        let mut a = vec![0u32; 40_000];
        let mut b = vec![0u32; 40_000];
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i as u32;
                *y = 2 * i as u32;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == i as u32));
        assert!(b.iter().enumerate().all(|(i, &x)| x == 2 * i as u32));
    }

    #[test]
    fn chunks_cover_everything() {
        let xs: Vec<u64> = (0..100_003).collect();
        let sums: Vec<u64> = xs.par_chunks(997).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 100_003usize.div_ceil(997));
        assert_eq!(sums.iter().sum::<u64>(), xs.iter().sum::<u64>());
    }

    #[test]
    fn reduce_tree_is_identical_across_thread_counts() {
        // Float addition is not associative: identical results across
        // widths prove the split tree is width-independent.
        let xs: Vec<f64> = (0..200_000)
            .map(|i| ((i * 2654435761u64) % 1_000_003) as f64 * 1e-7)
            .collect();
        let run = |threads: usize| -> f64 {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| xs.par_iter().map(|&x| x.sin()).reduce(|| 0.0, |a, b| a + b))
        };
        let baseline = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                baseline.to_bits(),
                run(threads).to_bits(),
                "float reduce differs at {threads} threads"
            );
        }
    }

    #[test]
    fn min_max_match_sequential_semantics() {
        let xs: Vec<i64> = (0..30_000).map(|i| (i * 48271) % 257 - 128).collect();
        assert_eq!(
            xs.par_iter().min_by(|a, b| a.cmp(b)).copied(),
            xs.iter().min().copied()
        );
        assert_eq!(
            xs.par_iter().max_by(|a, b| a.cmp(b)).copied(),
            xs.iter().max().copied()
        );
        assert_eq!(
            xs.par_iter().min_by_key(|&&x| x.abs()).map(|&x| x.abs()),
            xs.iter().map(|x| x.abs()).min()
        );
        let empty: Vec<i64> = Vec::new();
        assert_eq!(empty.par_iter().min_by(|a, b| a.cmp(b)), None);
    }

    #[test]
    fn filter_count_counts_matches_only() {
        let n = (0..123_457u32)
            .into_par_iter()
            .filter(|&x| x % 3 == 0)
            .count();
        assert_eq!(n, (0..123_457).filter(|&x| x % 3 == 0).count());
    }

    #[test]
    fn sum_and_flat_map() {
        let total: u64 = (0..10_000u64).into_par_iter().sum();
        assert_eq!(total, 10_000 * 9_999 / 2);
        let expanded: Vec<u32> = (0..1_000u32)
            .into_par_iter()
            .flat_map(|x| [x, x + 100_000])
            .collect();
        assert_eq!(expanded.len(), 2_000);
        assert_eq!(expanded[0], 0);
        assert_eq!(expanded[1], 100_000);
    }

    #[test]
    fn exact_collect_drops_written_items_on_panic() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicIsize, Ordering};
        static LIVE: AtomicIsize = AtomicIsize::new(0);
        struct Tracked;
        impl Tracked {
            fn new() -> Self {
                LIVE.fetch_add(1, Ordering::Relaxed);
                Tracked
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                LIVE.fetch_sub(1, Ordering::Relaxed);
            }
        }
        for threads in [1, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.install(|| {
                    (0..10_000u32)
                        .into_par_iter()
                        .map(|i| {
                            if i == 7_777 {
                                panic!("boom mid-collect");
                            }
                            Tracked::new()
                        })
                        .collect::<Vec<Tracked>>()
                })
            }));
            assert!(result.is_err());
            assert_eq!(
                LIVE.load(Ordering::Relaxed),
                0,
                "items written before the panic leaked at {threads} threads"
            );
        }
    }

    #[test]
    fn par_sorts_match_std() {
        let xs: Vec<u64> = (0..150_000).map(|i| (i * 2654435761) % 10_000).collect();
        let mut a = xs.clone();
        let mut b = xs.clone();
        a.par_sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        let mut c: Vec<(u64, usize)> = xs.iter().copied().zip(0..).collect();
        let mut d = c.clone();
        // Stable sort on a non-total key: ties must keep input order.
        c.par_sort_by_key(|&(x, _)| x);
        d.sort_by_key(|&(x, _)| x);
        assert_eq!(c, d);
    }

    #[test]
    fn par_sort_deterministic_across_thread_counts() {
        let xs: Vec<u64> = (0..120_000).map(|i| (i * 48271) % 1_000).collect();
        let run = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                let mut v: Vec<(u64, usize)> = xs.iter().copied().zip(0..).collect();
                v.par_sort_unstable_by(|a, b| a.0.cmp(&b.0));
                v
            })
        };
        let base = run(1);
        assert_eq!(
            base,
            run(4),
            "unstable sort permutation must not depend on width"
        );
    }

    #[test]
    fn adversarial_sizes() {
        for n in [
            0usize,
            1,
            2,
            MAX_LEAVES - 1,
            MAX_LEAVES,
            MAX_LEAVES + 1,
            4 * MAX_LEAVES + 3,
        ] {
            let xs: Vec<usize> = (0..n).collect();
            let got: Vec<usize> = xs.par_iter().map(|&x| x + 1).collect();
            assert_eq!(got.len(), n);
            assert!(got.iter().enumerate().all(|(i, &x)| x == i + 1));
            assert_eq!(xs.par_iter().count(), n);
        }
    }

    #[test]
    fn with_min_len_changes_leaf_but_not_result() {
        let xs: Vec<f64> = (0..80_000).map(|i| (i as f64).sqrt()).collect();
        let plain: f64 = xs.par_iter().copied().reduce(|| 0.0, |a, b| a + b);
        let hinted: f64 = xs
            .par_iter()
            .with_min_len(4096)
            .copied()
            .reduce(|| 0.0, |a, b| a + b);
        // Different trees may give different float totals; both must be
        // finite and close. (Equality across *thread counts* is what the
        // determinism tests pin; min_len is part of the tree shape.)
        assert!((plain - hinted).abs() < 1e-6 * plain.abs());
    }

    #[test]
    fn windows_producer() {
        let xs: Vec<u32> = (0..10_000).collect();
        let sums: Vec<u32> = xs.par_windows(3).map(|w| w.iter().sum()).collect();
        assert_eq!(sums.len(), 9_998);
        assert!(sums
            .iter()
            .enumerate()
            .all(|(i, &s)| s == (3 * i + 3) as u32));
    }
}
