//! Sequential implementation of the rayon parallel-iterator surface.
//!
//! [`Par`] wraps an ordinary [`Iterator`] and re-exposes the combinators the
//! workspace uses under their rayon names and signatures. Methods are
//! inherent (not a trait impl), so rayon-specific signatures such as
//! `reduce(identity, op)` never collide with `std::iter::Iterator`.

/// A "parallel" iterator: a plain iterator evaluated on the calling thread.
pub struct Par<I>(pub I);

impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;

    #[inline]
    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> Par<I> {
    #[inline]
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    #[inline]
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> Par<std::iter::Filter<I, F>> {
        Par(self.0.filter(f))
    }

    #[inline]
    pub fn filter_map<O, F: FnMut(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }

    #[inline]
    pub fn flat_map<O: IntoIterator, F: FnMut(I::Item) -> O>(
        self,
        f: F,
    ) -> Par<std::iter::FlatMap<I, O, F>> {
        Par(self.0.flat_map(f))
    }

    #[inline]
    pub fn zip<J: Iterator>(self, other: Par<J>) -> Par<std::iter::Zip<I, J>> {
        Par(self.0.zip(other.0))
    }

    #[inline]
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    #[inline]
    pub fn cloned<'a, T: 'a + Clone>(self) -> Par<std::iter::Cloned<I>>
    where
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.cloned())
    }

    #[inline]
    pub fn copied<'a, T: 'a + Copy>(self) -> Par<std::iter::Copied<I>>
    where
        I: Iterator<Item = &'a T>,
    {
        Par(self.0.copied())
    }

    /// Rayon no-op granularity hints.
    #[inline]
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    #[inline]
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    #[inline]
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f);
    }

    #[inline]
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Rayon-style reduce: fold from an identity element.
    #[inline]
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    #[inline]
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    #[inline]
    pub fn count(self) -> usize {
        self.0.count()
    }

    #[inline]
    pub fn min_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.min_by(f)
    }

    #[inline]
    pub fn max_by<F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering>(
        self,
        f: F,
    ) -> Option<I::Item> {
        self.0.max_by(f)
    }

    #[inline]
    pub fn min_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.min_by_key(f)
    }

    #[inline]
    pub fn max_by_key<K: Ord, F: FnMut(&I::Item) -> K>(self, f: F) -> Option<I::Item> {
        self.0.max_by_key(f)
    }

    #[inline]
    pub fn any<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut iter = self.0;
        let mut f = f;
        iter.any(&mut f)
    }

    #[inline]
    pub fn all<F: FnMut(I::Item) -> bool>(self, f: F) -> bool {
        let mut iter = self.0;
        let mut f = f;
        iter.all(&mut f)
    }

    /// Rayon's `find_any`: any matching element is acceptable; the shim
    /// returns the first.
    #[inline]
    pub fn find_any<F: FnMut(&I::Item) -> bool>(self, f: F) -> Option<I::Item> {
        let mut iter = self.0;
        let mut f = f;
        iter.find(|x| f(x))
    }

    #[inline]
    pub fn position_any<F: FnMut(I::Item) -> bool>(self, f: F) -> Option<usize> {
        let mut iter = self.0;
        let mut f = f;
        iter.position(&mut f)
    }
}

/// `into_par_iter()` for any owned collection or range.
pub trait IntoParallelIterator {
    type Item;
    type IntoIter: Iterator<Item = Self::Item>;

    fn into_par_iter(self) -> Par<Self::IntoIter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type IntoIter = C::IntoIter;

    #[inline]
    fn into_par_iter(self) -> Par<C::IntoIter> {
        Par(self.into_iter())
    }
}

/// `par_iter()` on `&C` for any collection iterable by reference.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;

    fn par_iter(&'data self) -> Par<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;

    #[inline]
    fn par_iter(&'data self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// `par_iter_mut()` on `&mut C`.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;

    fn par_iter_mut(&'data mut self) -> Par<Self::Iter>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
where
    &'data mut C: IntoIterator,
{
    type Item = <&'data mut C as IntoIterator>::Item;
    type Iter = <&'data mut C as IntoIterator>::IntoIter;

    #[inline]
    fn par_iter_mut(&'data mut self) -> Par<Self::Iter> {
        Par(self.into_iter())
    }
}

/// Chunked views of slices, rayon-style.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
    fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }

    #[inline]
    fn par_windows(&self, window_size: usize) -> Par<std::slice::Windows<'_, T>> {
        Par(self.windows(window_size))
    }
}

/// Mutable chunked views and the parallel sort family, rayon-style.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }

    #[inline]
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }

    #[inline]
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }

    #[inline]
    fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_by(compare);
    }

    #[inline]
    fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
        self.sort_unstable_by(compare);
    }

    #[inline]
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_by_key(key);
    }

    #[inline]
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
        self.sort_unstable_by_key(key);
    }
}
