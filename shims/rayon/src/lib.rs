//! Offline stand-in for the subset of [rayon](https://docs.rs/rayon) used by
//! this workspace.
//!
//! The build environment has no network access to crates.io, so the real
//! rayon cannot be vendored. This shim keeps the exact API shape the
//! workspace compiles against while providing a much simpler execution
//! model:
//!
//! * [`join`] runs its two closures on real OS threads (via
//!   [`std::thread::scope`]) as long as a global token budget — sized to the
//!   machine's hardware parallelism — has capacity, and degrades to
//!   sequential execution once the budget is exhausted. Recursive
//!   divide-and-conquer code therefore still fans out across cores without
//!   risking unbounded thread creation.
//! * The parallel-iterator surface ([`prelude`]) preserves rayon's method
//!   names and signatures (including the `reduce(identity, op)` form that
//!   differs from `std::iter::Iterator::reduce`) but evaluates sequentially
//!   on the calling thread. Every algorithm in this workspace is written to
//!   be scheduling-independent, so results are identical either way.
//! * [`ThreadPool`] / [`ThreadPoolBuilder`] run installed closures on the
//!   current thread, scoping the `join` budget to the pool's configured
//!   thread count for the duration (so 1-thread pools give true sequential
//!   baselines).
//!
//! Swapping the real rayon back in is a one-line change in the workspace
//! manifest; no source code needs to change.

use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::OnceLock;

pub mod iter;

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par,
        ParallelSlice, ParallelSliceMut,
    };
}

/// Number of worker threads the "pool" pretends to have: the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Stable small index for the calling thread, assigned on first use.
///
/// Unlike real rayon this never returns `None`: every thread (pool or not)
/// gets an index, which keeps per-thread sharding (e.g. `Collector`) mostly
/// uncontended under the shim's ad-hoc threads.
pub fn current_thread_index() -> Option<usize> {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    Some(INDEX.with(|i| *i))
}

/// Tokens available for spawning helper threads in [`join`]. Starts at
/// `current_num_threads() - 1` (the calling thread is the extra worker).
fn spawn_budget() -> &'static AtomicIsize {
    static BUDGET: OnceLock<AtomicIsize> = OnceLock::new();
    BUDGET.get_or_init(|| AtomicIsize::new(current_num_threads() as isize - 1))
}

struct BudgetToken;

impl BudgetToken {
    /// Try to reserve one helper thread; `None` when the budget is spent.
    fn acquire() -> Option<BudgetToken> {
        let budget = spawn_budget();
        if budget.fetch_sub(1, Ordering::AcqRel) > 0 {
            Some(BudgetToken)
        } else {
            budget.fetch_add(1, Ordering::AcqRel);
            None
        }
    }
}

impl Drop for BudgetToken {
    fn drop(&mut self) {
        spawn_budget().fetch_add(1, Ordering::AcqRel);
    }
}

/// Run the two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    match BudgetToken::acquire() {
        Some(_token) => std::thread::scope(|s| {
            let handle_b = s.spawn(oper_b);
            let ra = oper_a();
            match handle_b.join() {
                Ok(rb) => (ra, rb),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }),
        None => (oper_a(), oper_b()),
    }
}

/// Scope for structured task spawning. The shim runs every spawned closure
/// immediately on the calling thread, which preserves rayon's completion
/// guarantee (all tasks finish before `scope` returns) trivially.
pub struct Scope {
    _priv: (),
}

impl Scope {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope) + Send,
    {
        f(self);
    }
}

pub fn scope<F, R>(f: F) -> R
where
    F: FnOnce(&Scope) -> R + Send,
    R: Send,
{
    f(&Scope { _priv: () })
}

/// Error type returned by [`ThreadPoolBuilder::build`]; the shim never
/// actually fails to build.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _priv: (),
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Accepts rayon's pool configuration; the shim records the requested
/// thread count for introspection but always executes on the caller.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool" that runs installed closures on the current thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` on the calling thread with the [`join`] spawn budget scoped
    /// to this pool's thread count, so `num_threads(1)` really does produce
    /// a sequential run (the repro harness relies on this for its 1-thread
    /// baselines). Like the rest of the shim this assumes one pool is
    /// installed at a time; concurrent `install`s would share the global
    /// budget.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(isize);
        impl Drop for Restore {
            fn drop(&mut self) {
                spawn_budget().store(self.0, Ordering::Release);
            }
        }
        let previous = spawn_budget().swap(self.num_threads as isize - 1, Ordering::AcqRel);
        let _restore = Restore(previous);
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// The spawn budget is process-global, so tests that assert on its
    /// value (or on sequential execution) must not run concurrently with
    /// tests that consume tokens.
    fn budget_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn join_returns_both() {
        let _guard = budget_lock();
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_nested_recursion() {
        let _guard = budget_lock();
        fn sum(xs: &[u64]) -> u64 {
            if xs.len() < 4 {
                return xs.iter().sum();
            }
            let (lo, hi) = xs.split_at(xs.len() / 2);
            let (a, b) = join(|| sum(lo), || sum(hi));
            a + b
        }
        let xs: Vec<u64> = (0..10_000).collect();
        assert_eq!(sum(&xs), 10_000 * 9_999 / 2);
    }

    #[test]
    fn pool_installs() {
        let _guard = budget_lock();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn single_thread_pool_runs_join_sequentially() {
        let _guard = budget_lock();
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = std::thread::current().id();
        let (ta, tb) = pool.install(|| {
            join(
                || std::thread::current().id(),
                || std::thread::current().id(),
            )
        });
        assert_eq!(ta, caller, "1-thread pool must not spawn helpers");
        assert_eq!(tb, caller, "1-thread pool must not spawn helpers");
    }

    #[test]
    fn install_restores_budget() {
        let _guard = budget_lock();
        let before = super::spawn_budget().load(Ordering::Acquire);
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| ());
        assert_eq!(super::spawn_budget().load(Ordering::Acquire), before);
    }

    #[test]
    fn scope_runs_spawns() {
        let mut hits = 0;
        scope(|s| {
            let hits = &mut hits;
            s.spawn(move |_| *hits += 1);
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn par_iter_chains() {
        let xs = vec![1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let total = (0..100u64).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }
}
