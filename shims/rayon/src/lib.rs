//! Offline stand-in for the subset of [rayon](https://docs.rs/rayon) used by
//! this workspace.
//!
//! The build environment has no network access to crates.io, so the real
//! rayon cannot be vendored. Unlike the first iteration of this shim (which
//! ran iterator chains sequentially and spawned a fresh OS thread per
//! `join`), this version executes on a **persistent worker pool**:
//!
//! * Every pool is a [`registry`]: one Chase–Lev stealing deque per
//!   long-lived worker (owner pushes/pops LIFO, idle workers steal FIFO
//!   from victims) plus a small mutex injector for jobs submitted from
//!   outside the pool. [`join`] pushes its second closure onto the calling
//!   worker's own deque, runs the first inline, then either *reclaims* the
//!   job with one local pop (the cheap uncontended path) or — when a thief
//!   took it — *helps*: executing local, injected, and stolen jobs while it
//!   waits, which keeps nested fork-join deadlock-free with a bounded
//!   thread count and no per-call spawning or locking.
//! * The parallel-iterator surface ([`prelude`]) is built on splittable
//!   producers: terminal ops (`for_each`, `collect`, `reduce`, `sum`,
//!   `count`, `min_by`/`max_by`) recursively split their input and dispatch
//!   halves through [`join`], honoring `with_min_len` granularity hints.
//!   The split tree depends only on the input length and the hint — never on
//!   the worker count — so results are **bit-identical across thread
//!   counts** even for non-associative floating-point reductions.
//! * [`ThreadPool`] owns dedicated workers. [`install`](ThreadPool::install)
//!   runs the closure *on a pool worker* and blocks the calling thread
//!   without letting it execute pool jobs, so work stays scoped to the
//!   pool: a 1-thread pool really is a sequential baseline, and
//!   [`current_thread_index`] is always `< ` the pool width inside it.
//! * [`scope`] spawns run as heap jobs on the current registry and the
//!   scope helps until all of them (including nested spawns) finish.
//!
//! Env knobs: `RAYON_NUM_THREADS` caps the width of the implicit global
//! pool (default: available hardware parallelism). Explicit
//! [`ThreadPoolBuilder::num_threads`] pools are unaffected.
//!
//! Swapping the real rayon back in is a one-line change in the workspace
//! manifest; no source code needs to change.

use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

mod deque;
pub mod iter;
#[cfg(feature = "racecheck")]
pub mod racecheck;
mod registry;

use registry::{
    cooperative_wait, current_ctx, current_registry, default_width, local_index_in, HeapJob,
    Registry, StackJob,
};

pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, Par,
        ParallelSlice, ParallelSliceMut,
    };
}

/// Number of worker threads of the pool governing the calling thread: the
/// enclosing [`ThreadPool`]'s width on pool workers, the global pool's
/// width elsewhere.
pub fn current_num_threads() -> usize {
    match current_ctx() {
        Some(ctx) => ctx.registry.width(),
        // Same value the global registry is built with — answer the pure
        // width query without spawning the global workers as a side effect.
        None => default_width(),
    }
}

/// The calling thread's index within its pool: `Some(i)` with
/// `i < current_num_threads()` on pool workers, `None` on threads outside
/// any pool (matching real rayon). Per-thread sharded structures can rely
/// on the bound — indices never grow past the pool width, no matter how
/// many pools or ad-hoc threads a long-lived process creates.
pub fn current_thread_index() -> Option<usize> {
    current_ctx().map(|ctx| ctx.index)
}

/// Run the two closures, potentially in parallel, and return both results.
///
/// On a pool worker, `oper_b` is pushed onto the worker's own stealing
/// deque while `oper_a` runs on the calling thread; the call then settles
/// `oper_b` with one local pop (nobody stole it — the common case) or by
/// helping the pool until the thief finishes it. On a foreign thread the
/// job goes through the registry's injector instead. On a width-1 registry
/// both closures run inline, sequentially.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let registry = current_registry();
    if registry.width() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }

    let job_b = StackJob::new(oper_b);
    let job_ref = job_b.as_job_ref();
    let tag = job_ref.data_ptr();

    if let Some(index) = local_index_in(&registry) {
        // Worker path: publish job_b on our own deque. Thieves take the
        // *oldest* entry first, so anything pushed above job_b during
        // `oper_a` (nested joins, scope spawns executed while helping) has
        // settled or been stolen by the time we reclaim — the pop below
        // yields job_b itself, a stray leftover spawned onto our deque by
        // a stolen job, or `None` once job_b is gone to a thief.
        registry.submit(job_ref);
        let ra = match panic::catch_unwind(AssertUnwindSafe(oper_a)) {
            Ok(v) => v,
            Err(payload) => {
                // `oper_a` panicked, but `job_b` may still point into this
                // stack frame: settle it before unwinding. Job bodies catch
                // their own panics, so this cannot double-unwind.
                settle_local(&registry, index, &job_b);
                panic::resume_unwind(payload);
            }
        };
        settle_local(&registry, index, &job_b);
        return (ra, job_b.into_result());
    }

    // Foreign thread (global-registry caller): go through the injector.
    registry.inject(job_ref);
    let ra = match panic::catch_unwind(AssertUnwindSafe(oper_a)) {
        Ok(v) => v,
        Err(payload) => {
            if registry.try_reclaim(tag) {
                job_b.run_inline();
            } else {
                cooperative_wait(&registry, || job_b.is_done());
            }
            panic::resume_unwind(payload);
        }
    };

    if registry.try_reclaim(tag) {
        job_b.run_inline();
    } else {
        cooperative_wait(&registry, || job_b.is_done());
    }
    (ra, job_b.into_result())
}

/// Settle a worker's own `join` job: pop-and-run from the local deque (the
/// steal-back fast path — usually the very job we pushed) until the job is
/// done, falling back to full help-waiting once the deque runs dry (the
/// job was stolen and is in flight on another worker).
fn settle_local<F, R>(registry: &Registry, index: usize, job_b: &StackJob<F, R>)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    while !job_b.is_done() {
        match registry.pop_local(index) {
            // SAFETY: locally queued jobs are alive until executed
            // (join/scope contract) and never unwind.
            Some(job) => unsafe { job.execute() },
            None => {
                cooperative_wait(registry, || job_b.is_done());
                return;
            }
        }
    }
}

/// Scope for structured task spawning: every spawned closure runs as a pool
/// job and [`scope`] does not return until all of them (including nested
/// spawns) have finished, which is what makes borrowing non-`'static` data
/// from the enclosing frame sound.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    owner: Thread,
    /// Models the `pending` countdown: each finishing spawn releases, the
    /// scope owner acquires once the count reaches zero.
    #[cfg(feature = "racecheck")]
    rc_done: racecheck::SyncVar,
    marker: PhantomData<std::cell::Cell<&'scope ()>>,
}

/// Pointer wrapper that lets the scope reference cross into pool jobs; the
/// scope outlives them by construction.
struct ScopePtr<'scope>(*const Scope<'scope>);
// SAFETY: the Scope outlives every job (scope() blocks until pending == 0)
// and all access through this pointer is internally synchronized: `pending`
// is atomic, `panic` is behind a Mutex, `owner`/`registry` are only read
// (Thread and Arc<Registry> are Sync). Note Scope itself is !Sync — the
// invariant marker is a Cell — so anyone adding unsynchronized mutable
// state to Scope must revisit this impl.
unsafe impl Send for ScopePtr<'_> {}

impl<'scope> ScopePtr<'scope> {
    /// Method (not field) access, so closures capture the whole Send
    /// wrapper rather than the raw pointer field.
    fn get(&self) -> *const Scope<'scope> {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.registry.width() <= 1 {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(self))) {
                self.panic.lock().unwrap().get_or_insert(payload);
            }
            return;
        }
        self.pending.fetch_add(1, Ordering::AcqRel);
        let scope_ptr = ScopePtr(self as *const Scope<'scope>);
        let task = move || {
            // SAFETY: `scope` blocks until pending == 0, so the Scope (and
            // everything 'scope borrows) outlives this job.
            let scope = unsafe { &*scope_ptr.get() };
            struct Arrive<'a, 'scope>(&'a Scope<'scope>);
            impl Drop for Arrive<'_, '_> {
                fn drop(&mut self) {
                    #[cfg(feature = "racecheck")]
                    self.0.rc_done.release();
                    if self.0.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                        self.0.owner.unpark();
                    }
                }
            }
            let _arrive = Arrive(scope);
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| f(scope))) {
                scope.panic.lock().unwrap().get_or_insert(payload);
            }
        };
        // SAFETY: the scope waits for every spawned job before returning.
        unsafe { HeapJob::push(&self.registry, task) };
    }
}

/// Create a scope, run `op` inside it, and wait for all spawned tasks. The
/// first panic among `op` and the spawns is propagated after all tasks
/// settle.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope {
        registry: current_registry(),
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        owner: thread::current(),
        #[cfg(feature = "racecheck")]
        rc_done: racecheck::SyncVar::new(),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    cooperative_wait(&s.registry, || s.pending.load(Ordering::Acquire) == 0);
    // Pairs with the release in `Arrive::drop`: the owner observes every
    // spawned job's effects before using anything they produced.
    #[cfg(feature = "racecheck")]
    s.rc_done.acquire();
    match result {
        Err(payload) => panic::resume_unwind(payload),
        Ok(value) => {
            if let Some(payload) = s.panic.lock().unwrap().take() {
                panic::resume_unwind(payload);
            }
            value
        }
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; the shim only fails
/// if worker threads cannot be spawned, which panics instead.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _priv: (),
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with a configurable worker count
/// (`num_threads(0)` or default: the machine's available parallelism).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_width()
        } else {
            self.num_threads
        };
        let (registry, workers) = Registry::spawn(width, width);
        Ok(ThreadPool { registry, workers })
    }
}

/// A pool of dedicated worker threads. Dropping the pool shuts the workers
/// down (after the queue drains).
#[derive(Debug)]
pub struct ThreadPool {
    registry: Arc<Registry>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("width", &self.width())
            .finish()
    }
}

/// Scheduler counters for one pool worker, snapshotted by
/// [`ThreadPool::metrics`]. All counters are monotone over the pool's
/// lifetime and collected with `Relaxed` increments, so a snapshot taken
/// while the pool is busy can lag in-flight work by a few events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Jobs this worker executed, from any source (own deque, injector,
    /// steals).
    pub jobs: u64,
    /// `steal` calls issued at other workers' deques (lost-CAS retries
    /// count again).
    pub steal_attempts: u64,
    /// Steal attempts that returned a job.
    pub steal_hits: u64,
    /// Times the worker parked on the idle condvar.
    pub parks: u64,
}

/// A snapshot of one pool's scheduler counters; see [`ThreadPool::metrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Per-worker counters, indexed by worker index.
    pub workers: Vec<WorkerMetrics>,
    /// Jobs submitted through the shared injector (from outside the pool,
    /// e.g. `install` calls).
    pub injected: u64,
}

impl PoolMetrics {
    /// Total jobs executed across all workers.
    pub fn total_jobs(&self) -> u64 {
        self.workers.iter().map(|w| w.jobs).sum()
    }

    /// Total successful steals across all workers.
    pub fn total_steal_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.steal_hits).sum()
    }

    /// Total steal attempts across all workers.
    pub fn total_steal_attempts(&self) -> u64 {
        self.workers.iter().map(|w| w.steal_attempts).sum()
    }

    /// Total idle parks across all workers.
    pub fn total_parks(&self) -> u64 {
        self.workers.iter().map(|w| w.parks).sum()
    }
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.registry.width()
    }

    /// Snapshot this pool's scheduler counters (jobs executed, steal
    /// attempts/hits, injector pushes, idle parks). Counters are racy
    /// `Relaxed` reads — take the snapshot after the work of interest has
    /// settled (e.g. after `install` returns) for exact totals.
    pub fn metrics(&self) -> PoolMetrics {
        self.registry.metrics()
    }

    /// Run `op` on one of this pool's workers and block until it returns.
    /// All parallelism `op` forks (joins, scopes, `Par` chains) stays on
    /// this pool's workers, so `num_threads(1)` gives a truly sequential
    /// run (the repro harness relies on this for 1-thread baselines) and
    /// [`current_thread_index`] inside `op` is always `< num_threads`.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some(ctx) = current_ctx() {
            if Arc::ptr_eq(&ctx.registry, &self.registry) {
                // Already on this pool; run inline (matches rayon).
                return op();
            }
        }
        let job = StackJob::new(op);
        self.registry.inject(job.as_job_ref());
        // Block without helping: executing pool jobs here would leak work
        // onto a non-pool thread and break the thread-index bound.
        while !job.is_done() {
            thread::park_timeout(Duration::from_millis(1));
        }
        job.into_result()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.terminate();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_nested_recursion() {
        fn sum(xs: &[u64]) -> u64 {
            if xs.len() < 4 {
                return xs.iter().sum();
            }
            let (lo, hi) = xs.split_at(xs.len() / 2);
            let (a, b) = join(|| sum(lo), || sum(hi));
            a + b
        }
        let xs: Vec<u64> = (0..10_000).collect();
        assert_eq!(sum(&xs), 10_000 * 9_999 / 2);
    }

    #[test]
    fn join_uses_pool_workers() {
        // Inside a pool of width >= 2, deeply nested joins must fan out to
        // pool workers (not the install caller, not fresh threads).
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caller = thread::current().id();
        let ids = pool.install(|| {
            fn collect_ids(depth: usize, out: &ConcurrentIds) {
                out.record();
                if depth == 0 {
                    return;
                }
                join(
                    || collect_ids(depth - 1, out),
                    || collect_ids(depth - 1, out),
                );
            }
            let out = ConcurrentIds::default();
            collect_ids(6, &out);
            out.into_set()
        });
        assert!(!ids.contains(&caller), "work must not run on the caller");
        assert!(!ids.is_empty());
    }

    #[derive(Default)]
    struct ConcurrentIds(Mutex<Vec<thread::ThreadId>>);
    impl ConcurrentIds {
        fn record(&self) {
            self.0.lock().unwrap().push(thread::current().id());
        }
        fn into_set(self) -> HashSet<thread::ThreadId> {
            self.0.into_inner().unwrap().into_iter().collect()
        }
    }

    #[test]
    fn pool_installs() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn single_thread_pool_runs_join_sequentially() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let ids = pool.install(|| {
            let worker = thread::current().id();
            let (ta, tb) = join(|| thread::current().id(), || thread::current().id());
            (worker, ta, tb)
        });
        assert_eq!(ids.1, ids.0, "1-thread pool must not fan out");
        assert_eq!(ids.2, ids.0, "1-thread pool must not fan out");
    }

    #[test]
    fn install_runs_on_a_pool_worker() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caller = thread::current().id();
        let inside = pool.install(|| thread::current().id());
        assert_ne!(inside, caller, "install must run op on a pool worker");
    }

    #[test]
    fn thread_index_bounded_by_pool_width() {
        // Regression test: the old shim handed out a monotonically growing
        // global counter, so a long-lived process eventually saw indices
        // >= the pool width. Repeated pools + heavy fan-out must never
        // yield an out-of-range index from inside `install`.
        for round in 0..3 {
            let width = 2 + round;
            let pool = ThreadPoolBuilder::new().num_threads(width).build().unwrap();
            let indices = pool.install(|| {
                let seen = Mutex::new(HashSet::new());
                (0..10_000u32)
                    .into_par_iter()
                    .with_min_len(64)
                    .for_each(|_| {
                        let idx = current_thread_index().expect("pool worker has an index");
                        assert_eq!(current_num_threads(), width);
                        seen.lock().unwrap().insert(idx);
                    });
                seen.into_inner().unwrap()
            });
            assert!(
                indices.iter().all(|&i| i < width),
                "indices {indices:?} exceed pool width {width}"
            );
        }
        // Threads outside any pool have no index at all.
        assert_eq!(thread::spawn(current_thread_index).join().unwrap(), None);
    }

    #[test]
    fn stolen_jobs_keep_thread_index_bounded() {
        // Regression test for the stealing scheduler: a worker executing a
        // job stolen from a foreign deque must still report its *own*
        // index (< width) and the pool's width — per-thread sharded
        // structures and `block_size`-style grain math rely on both being
        // width-stable no matter which deque a job came from.
        use std::sync::atomic::AtomicBool;
        for width in [2usize, 3, 4] {
            let pool = ThreadPoolBuilder::new().num_threads(width).build().unwrap();
            let (a_thread, b_thread, b_index, b_width) = pool.install(|| {
                let flag = AtomicBool::new(false);
                let (a, b) = join(
                    || {
                        // Spin until job_b has run: this thread never pops
                        // its deque meanwhile, so job_b was necessarily
                        // *stolen* by another worker.
                        while !flag.load(Ordering::Acquire) {
                            thread::yield_now();
                        }
                        thread::current().id()
                    },
                    || {
                        let index = current_thread_index().expect("stolen job left the pool");
                        let w = current_num_threads();
                        let id = thread::current().id();
                        flag.store(true, Ordering::Release);
                        (id, index, w)
                    },
                );
                (a, b.0, b.1, b.2)
            });
            assert_ne!(a_thread, b_thread, "job_b must have been stolen");
            assert!(b_index < width, "index {b_index} escaped width {width}");
            assert_eq!(b_width, width);
        }
    }

    /// Deep nested joins at several widths with the detector on: every
    /// publish/steal edge of the deque scheduler must carry a modeled
    /// release/acquire pair, so zero races may be reported.
    #[cfg(feature = "racecheck")]
    #[test]
    fn deep_nested_joins_are_race_free_across_widths() {
        let _guard = racecheck::test_lock();
        for threads in [2usize, 4, 8] {
            racecheck::take_races();
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let total = pool.install(|| {
                fn count(depth: usize) -> u64 {
                    if depth == 0 {
                        return 1;
                    }
                    let (a, b) = join(|| count(depth - 1), || count(depth - 1));
                    a + b
                }
                count(10)
            });
            assert_eq!(total, 1 << 10);
            let races = racecheck::take_races();
            assert!(
                races.is_empty(),
                "nested joins raced at {threads}: {races:?}"
            );
        }
    }

    #[test]
    fn install_propagates_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| panic!("boom in pool"));
        }));
        assert!(result.is_err());
        // The pool stays usable afterwards.
        assert_eq!(pool.install(|| 5), 5);
    }

    #[test]
    fn join_propagates_panics_from_both_sides() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        for side in 0..2 {
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.install(|| {
                    join(
                        || {
                            if side == 0 {
                                panic!("left")
                            }
                        },
                        || {
                            if side == 1 {
                                panic!("right")
                            }
                        },
                    )
                })
            }));
            assert!(result.is_err(), "side {side} panic must propagate");
        }
        assert_eq!(pool.install(|| 1), 1);
    }

    #[test]
    fn scope_runs_spawns() {
        let mut hits = 0;
        scope(|s| {
            let hits = &mut hits;
            s.spawn(move |_| *hits += 1);
        });
        assert_eq!(hits, 1);
    }

    #[test]
    fn scope_waits_for_all_spawns_in_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let total = pool.install(|| {
            let counter = AtomicU64::new(0);
            scope(|s| {
                for i in 0..100u64 {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(i, Ordering::Relaxed);
                    });
                }
            });
            counter.load(Ordering::Relaxed)
        });
        assert_eq!(total, 4950);
    }

    #[test]
    fn nested_scope_spawns_complete() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let total = pool.install(|| {
            let counter = AtomicU64::new(0);
            scope(|s| {
                for _ in 0..8 {
                    let counter = &counter;
                    s.spawn(move |inner| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        inner.spawn(move |_| {
                            counter.fetch_add(10, Ordering::Relaxed);
                        });
                    });
                }
            });
            counter.load(Ordering::Relaxed)
        });
        assert_eq!(total, 8 + 80);
    }

    #[test]
    fn pool_metrics_count_jobs_and_injections() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.metrics().workers.len(), 4);
        let sum = pool.install(|| {
            (0..10_000u64)
                .into_par_iter()
                .with_min_len(16)
                .map(|x| x)
                .sum::<u64>()
        });
        assert_eq!(sum, 10_000 * 9_999 / 2);
        let m = pool.metrics();
        assert!(m.injected >= 1, "install goes through the injector");
        assert!(m.total_jobs() > 0, "fan-out must execute pool jobs");
        assert!(m.total_steal_attempts() >= m.total_steal_hits());
        assert!(m.total_parks() > 0, "the pool idled before install");
        // Counters are monotone across snapshots.
        pool.install(|| ());
        let m2 = pool.metrics();
        assert!(m2.injected >= m.injected);
        assert!(m2.total_jobs() >= m.total_jobs());
    }

    #[test]
    fn par_iter_chains() {
        let xs = vec![1u64, 2, 3, 4, 5];
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
        let total = (0..100u64).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }
}
