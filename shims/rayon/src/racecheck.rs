//! Vector-clock happens-before race detection for the shim's lock-free core.
//!
//! Compiled only under the `racecheck` feature. The detector models the
//! *logical* synchronization protocol of the pool — job publication, job
//! completion, scope arrival — as explicit release/acquire edges on
//! [`SyncVar`]s, and the unsafe shared cells (a stack job's closure and
//! result slots, a heap job's environment, a `SnapshotCell`'s writer slot)
//! as [`DataVar`]s. Every instrumented access is checked against the
//! classic vector-clock happens-before relation: two accesses to the same
//! `DataVar` race iff at least one is a write and neither happens-before
//! the other.
//!
//! The detector sees only what is instrumented: the fork/join edges the
//! shim's own atomics are supposed to create. Running the real EMST /
//! HDBSCAN* pipelines under `racecheck` therefore validates that the
//! `Release`/`Acquire` protocol in `registry.rs` (and `SnapshotCell` in
//! the serving crate) covers every cross-thread hand-off — remove one
//! release edge (see the seeded-race tests) and the detector reports the
//! pair of conflicting access sites, `file:line` each.
//!
//! Threads created outside the pool (`std::thread::spawn`) are deliberately
//! *not* modeled: they get fresh vector clocks with no fork edge, so
//! anything they share with another thread through an instrumented cell is
//! reported unless an instrumented release/acquire pair orders it. The
//! seeded-race tests exploit this to make detection deterministic rather
//! than timing-dependent.
//!
//! Races are recorded, not panicked on: tests drain them via [`take_races`]
//! so a positive detection can assert on both access sites.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

type Tid = usize;

/// Small per-thread id, assigned on first instrumented access. Never
/// reused, so clocks of dead threads stay meaningful.
fn tid() -> Tid {
    static NEXT_TID: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TID: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    TID.with(|t| {
        let v = t.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// A vector clock: component `t` counts the epochs of thread `t` that the
/// owner has observed (directly or transitively through acquires).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    fn get(&self, t: Tid) -> u64 {
        self.0.get(t).copied().unwrap_or(0)
    }

    fn set(&mut self, t: Tid, v: u64) {
        if self.0.len() <= t {
            self.0.resize(t + 1, 0);
        }
        self.0[t] = v;
    }

    /// Component-wise maximum (the join of the happens-before lattice).
    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, &theirs) in self.0.iter_mut().zip(other.0.iter()) {
            if theirs > *mine {
                *mine = theirs;
            }
        }
    }
}

thread_local! {
    /// The calling thread's own clock. Only ever touched by its owner, so
    /// no lock is needed; sync variables carry snapshots between threads.
    static CLOCK: RefCell<VClock> = RefCell::new(VClock::default());
}

/// Run `f` with the current thread's id and clock. Lazily starts the
/// thread's own component at epoch 1 so a thread that has never
/// synchronized is ordered after *nothing* (epoch 0 would make its first
/// access vacuously happen-before everyone).
fn with_clock<R>(f: impl FnOnce(Tid, &mut VClock) -> R) -> R {
    let t = tid();
    CLOCK.with(|c| {
        let mut c = c.borrow_mut();
        if c.get(t) == 0 {
            c.set(t, 1);
        }
        f(t, &mut c)
    })
}

/// The detector's own locks guard no user state and run no user code, so
/// they can only be poisoned by a bug in this module; shrug it off rather
/// than cascading poison panics through instrumented drop paths.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One instrumented release/acquire pairing point (a job-published flag, a
/// completion flag, a publication counter, a mutex). `release` merges the
/// caller's clock into the variable; `acquire` merges the variable into
/// the caller.
pub struct SyncVar {
    clock: Mutex<VClock>,
}

impl SyncVar {
    pub fn new() -> Self {
        SyncVar {
            clock: Mutex::new(VClock::default()),
        }
    }

    /// Model a release operation: everything the caller has done so far
    /// becomes visible to later acquirers, and the caller's epoch advances
    /// so its *subsequent* work is not dragged under this edge.
    pub fn release(&self) {
        with_clock(|t, ct| {
            lock(&self.clock).join(ct);
            ct.set(t, ct.get(t) + 1);
        });
    }

    /// Model an acquire operation: the caller observes everything released
    /// into this variable so far.
    pub fn acquire(&self) {
        with_clock(|_, ct| {
            ct.join(&lock(&self.clock));
        });
    }
}

impl Default for SyncVar {
    fn default() -> Self {
        Self::new()
    }
}

/// One instrumented access: which thread, at which of its epochs, from
/// which source location, read or write.
#[derive(Clone, Debug)]
pub struct Access {
    pub tid: Tid,
    clock: u64,
    pub location: &'static Location<'static>,
    pub op: &'static str,
}

impl Access {
    /// Does this access happen-before a thread whose clock is `c`?
    fn ordered_before(&self, c: &VClock) -> bool {
        c.get(self.tid) >= self.clock
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {} (thread {})", self.op, self.location, self.tid)
    }
}

/// A detected race: two accesses to `var`, at least one a write, with no
/// happens-before edge between them. Both sites are reported.
#[derive(Clone, Debug)]
pub struct Race {
    pub var: &'static str,
    pub first: Access,
    pub second: Access,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race on `{}`: {} is concurrent with {}",
            self.var, self.first, self.second
        )
    }
}

fn races_store() -> &'static Mutex<Vec<Race>> {
    static RACES: OnceLock<Mutex<Vec<Race>>> = OnceLock::new();
    RACES.get_or_init(|| Mutex::new(Vec::new()))
}

fn report(var: &'static str, first: Access, second: Access) {
    let mut races = lock(races_store());
    // One report per (variable, site pair): the same broken edge fires on
    // every iteration of a stress loop otherwise.
    if races.iter().any(|r| {
        r.var == var
            && r.first.location == first.location
            && r.second.location == second.location
            && r.first.op == first.op
            && r.second.op == second.op
    }) {
        return;
    }
    races.push(Race { var, first, second });
}

/// Drain all races recorded so far (process-global). Tests call this
/// before the scenario under test to discard leftovers, and after it to
/// assert emptiness / inspect sites.
pub fn take_races() -> Vec<Race> {
    std::mem::take(&mut *lock(races_store()))
}

/// Number of races currently recorded, without draining.
pub fn race_count() -> usize {
    lock(races_store()).len()
}

/// Serialize tests that assert on the process-global race list. Any test —
/// in this crate or downstream — that calls [`take_races`] must hold this
/// guard for its whole body, or a concurrently seeded race leaks into its
/// assertion.
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A shared memory cell whose accesses are checked for happens-before
/// ordering. Reads since the last write are all kept (one per thread);
/// a write must be ordered after the previous write *and* every such read.
pub struct DataVar {
    label: &'static str,
    state: Mutex<DataState>,
}

#[derive(Default)]
struct DataState {
    last_write: Option<Access>,
    reads: Vec<Access>,
}

impl DataVar {
    pub fn new(label: &'static str) -> Self {
        DataVar {
            label,
            state: Mutex::new(DataState::default()),
        }
    }

    /// Record a read of the cell; races with an unordered previous write.
    #[track_caller]
    pub fn on_read(&self) {
        let location = Location::caller();
        with_clock(|t, ct| {
            let mut s = lock(&self.state);
            let me = Access {
                tid: t,
                clock: ct.get(t),
                location,
                op: "read",
            };
            if let Some(w) = &s.last_write {
                if w.tid != t && !w.ordered_before(ct) {
                    report(self.label, w.clone(), me.clone());
                }
            }
            // Keep only the latest read per thread: earlier same-thread
            // reads are ordered before it by program order.
            s.reads.retain(|r| r.tid != t);
            s.reads.push(me);
        });
    }

    /// Record a write; races with an unordered previous write or any
    /// unordered read since that write.
    #[track_caller]
    pub fn on_write(&self) {
        let location = Location::caller();
        with_clock(|t, ct| {
            let mut s = lock(&self.state);
            let me = Access {
                tid: t,
                clock: ct.get(t),
                location,
                op: "write",
            };
            if let Some(w) = &s.last_write {
                if w.tid != t && !w.ordered_before(ct) {
                    report(self.label, w.clone(), me.clone());
                }
            }
            for r in &s.reads {
                if r.tid != t && !r.ordered_before(ct) {
                    report(self.label, r.clone(), me.clone());
                }
            }
            s.reads.clear();
            s.last_write = Some(me);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // `super::test_lock` serializes every test asserting on the global
    // race list, including the stealing-deque tests in `crate::deque`.

    #[test]
    fn same_thread_accesses_never_race() {
        let _guard = test_lock();
        take_races();
        let v = DataVar::new("same-thread");
        v.on_write();
        v.on_read();
        v.on_write();
        assert!(take_races().is_empty());
    }

    #[test]
    fn release_acquire_orders_cross_thread_accesses() {
        let _guard = test_lock();
        take_races();
        let v = Arc::new(DataVar::new("published"));
        let s = Arc::new(SyncVar::new());
        let (v2, s2) = (Arc::clone(&v), Arc::clone(&s));
        // Writer publishes through the sync var, then the reader acquires
        // it: a proper edge, no race. The spawn itself adds no edge.
        std::thread::spawn(move || {
            v2.on_write();
            s2.release();
        })
        .join()
        .unwrap();
        std::thread::spawn(move || {
            s.acquire();
            v.on_read();
        })
        .join()
        .unwrap();
        assert!(
            take_races().is_empty(),
            "release/acquire must order the pair"
        );
    }

    #[test]
    fn unsynchronized_write_read_is_reported_with_both_sites() {
        let _guard = test_lock();
        take_races();
        let v = Arc::new(DataVar::new("racy-cell"));
        let v2 = Arc::clone(&v);
        // Thread join is real synchronization but deliberately unmodeled,
        // so the detector must flag the pair no matter how it interleaves.
        std::thread::spawn(move || v2.on_write()).join().unwrap();
        std::thread::spawn(move || v.on_read()).join().unwrap();
        let races = take_races();
        assert_eq!(races.len(), 1, "exactly one race expected: {races:?}");
        let r = &races[0];
        assert_eq!(r.var, "racy-cell");
        assert_eq!((r.first.op, r.second.op), ("write", "read"));
        assert!(r.first.location.file().ends_with("racecheck.rs"));
        assert!(r.second.location.file().ends_with("racecheck.rs"));
        assert_ne!(r.first.location.line(), r.second.location.line());
        assert_ne!(r.first.tid, r.second.tid);
    }

    #[test]
    fn unsynchronized_write_write_is_reported() {
        let _guard = test_lock();
        take_races();
        let v = Arc::new(DataVar::new("ww"));
        let v2 = Arc::clone(&v);
        std::thread::spawn(move || v2.on_write()).join().unwrap();
        std::thread::spawn(move || v.on_write()).join().unwrap();
        let races = take_races();
        assert_eq!(races.len(), 1);
        assert_eq!((races[0].first.op, races[0].second.op), ("write", "write"));
    }

    #[test]
    fn read_then_unordered_write_is_reported() {
        let _guard = test_lock();
        take_races();
        let v = Arc::new(DataVar::new("rw"));
        let s = Arc::new(SyncVar::new());
        let (v2, s2) = (Arc::clone(&v), Arc::clone(&s));
        // Ordered initial write, then an unordered reader/writer pair.
        v.on_write();
        s.release();
        std::thread::spawn(move || {
            s2.acquire();
            v2.on_read(); // ordered after the write — no race yet
        })
        .join()
        .unwrap();
        std::thread::spawn(move || {
            s.acquire(); // ordered after the initial write...
            v.on_write(); // ...but unordered with the read
        })
        .join()
        .unwrap();
        let races = take_races();
        assert_eq!(races.len(), 1, "{races:?}");
        assert_eq!((races[0].first.op, races[0].second.op), ("read", "write"));
    }

    #[test]
    fn transitive_edges_compose() {
        let _guard = test_lock();
        take_races();
        let v = Arc::new(DataVar::new("transitive"));
        let ab = Arc::new(SyncVar::new());
        let bc = Arc::new(SyncVar::new());
        let (v_a, ab_a) = (Arc::clone(&v), Arc::clone(&ab));
        let (ab_b, bc_b) = (Arc::clone(&ab), Arc::clone(&bc));
        // A writes and releases to B; B forwards to C without touching the
        // cell; C reads. Ordering must flow through the middle thread.
        std::thread::spawn(move || {
            v_a.on_write();
            ab_a.release();
        })
        .join()
        .unwrap();
        std::thread::spawn(move || {
            ab_b.acquire();
            bc_b.release();
        })
        .join()
        .unwrap();
        std::thread::spawn(move || {
            bc.acquire();
            v.on_read();
        })
        .join()
        .unwrap();
        assert!(take_races().is_empty(), "transitive HB must be recognized");
    }

    #[test]
    fn duplicate_site_pairs_are_reported_once() {
        let _guard = test_lock();
        take_races();
        let v = Arc::new(DataVar::new("dedup"));
        for _ in 0..5 {
            let v2 = Arc::clone(&v);
            std::thread::spawn(move || v2.on_write()).join().unwrap();
        }
        assert_eq!(take_races().len(), 1, "same site pair dedups");
    }

    #[test]
    fn pool_join_protocol_is_race_free() {
        let _guard = test_lock();
        take_races();
        // Real pool traffic: nested joins and scope spawns. The StackJob /
        // HeapJob / Scope instrumentation must provide every edge; any
        // missing release or acquire in the shim shows up here.
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let total = pool.install(|| {
            fn sum(xs: &[u64]) -> u64 {
                if xs.len() < 16 {
                    return xs.iter().sum();
                }
                let (lo, hi) = xs.split_at(xs.len() / 2);
                let (a, b) = crate::join(|| sum(lo), || sum(hi));
                a + b
            }
            let xs: Vec<u64> = (0..10_000).collect();
            sum(&xs)
        });
        assert_eq!(total, 10_000 * 9_999 / 2);
        let races = take_races();
        assert!(races.is_empty(), "pool protocol raced: {races:?}");
    }

    #[test]
    fn scope_protocol_is_race_free() {
        let _guard = test_lock();
        take_races();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let total = pool.install(|| {
            let counter = std::sync::atomic::AtomicU64::new(0);
            crate::scope(|s| {
                for i in 0..64u64 {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(i, Ordering::Relaxed);
                    });
                }
            });
            counter.load(Ordering::Relaxed)
        });
        assert_eq!(total, 64 * 63 / 2);
        let races = take_races();
        assert!(races.is_empty(), "scope protocol raced: {races:?}");
    }
}
