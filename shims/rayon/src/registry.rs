//! The worker-pool core of the rayon shim.
//!
//! A [`Registry`] is one pool: a shared FIFO injector queue of erased
//! [`JobRef`]s plus a fixed set of persistent worker threads that pop and
//! execute them. Every pool-aware entry point (`join`, `scope`, the `Par`
//! terminal ops, `ThreadPool::install`) resolves its registry through a
//! thread-local: worker threads carry `(registry, index)` so nested
//! parallelism stays inside the pool that spawned it, and foreign threads
//! fall back to the lazily created global registry.
//!
//! Blocking protocol: a thread that must wait for a job it enqueued either
//! *reclaims* it (removes it from the queue and runs it inline — the
//! "steal-back" path that makes the common uncontended `join` cheap) or
//! *helps* (executes other queued jobs until its own completes). Helping is
//! what makes nested `join`s deadlock-free with a bounded worker count.
//! Threads outside the pool (e.g. the caller of `install`) block without
//! helping, so pool-scoped work only ever runs on pool workers and
//! `current_thread_index` stays below the pool width.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

/// A type-erased pointer to a job living on a stack frame ([`StackJob`]) or
/// on the heap ([`HeapJob`]). The pointee must stay alive until `execute`
/// runs (or the ref is reclaimed from the queue); `join`/`scope` guarantee
/// this by never returning before their jobs settle.
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the owning construct
// keeps the pointee alive until it is; the pointee's own synchronization
// (atomics + catch_unwind) makes cross-thread execution sound.
unsafe impl Send for JobRef {}

impl JobRef {
    #[inline]
    pub(crate) fn data_ptr(&self) -> *const () {
        self.data
    }

    /// Run the job. Job bodies catch panics internally, so this never
    /// unwinds into the caller.
    ///
    /// # Safety
    /// The pointee must still be alive and not yet executed.
    #[inline]
    pub(crate) unsafe fn execute(self) {
        // SAFETY: caller upholds the liveness/once contract above; the
        // execute fn was paired with this data pointer at construction.
        unsafe { (self.execute)(self.data) }
    }
}

/// One worker pool: injector queue + membership data.
pub(crate) struct Registry {
    queue: Mutex<VecDeque<JobRef>>,
    available: Condvar,
    width: usize,
    shutdown: AtomicBool,
}

// SAFETY: the queue owns JobRefs (Send); everything else is Sync already.
unsafe impl Sync for Registry {}
// SAFETY: same reasoning — JobRef is the only non-auto-Send field content.
unsafe impl Send for Registry {}

impl Registry {
    /// Create a registry of logical `width` and spawn `workers` persistent
    /// worker threads (indices `0..workers`, always `< width`).
    pub(crate) fn spawn(width: usize, workers: usize) -> (Arc<Registry>, Vec<JoinHandle<()>>) {
        debug_assert!(workers <= width);
        let registry = Arc::new(Registry {
            // analyze:allow(hotpath-lock) — the injector is mutex-based by design; see module docs on the blocking protocol
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            width: width.max(1),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|index| {
                let r = Arc::clone(&registry);
                thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    // Recursive divide-and-conquer plus help-waiting can nest
                    // deeply; give workers a roomy stack.
                    .stack_size(8 * 1024 * 1024)
                    .spawn(move || worker_main(r, index))
                    // analyze:allow(hotpath-unwrap) — pool construction, runs once per pool
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    #[inline]
    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Enqueue a job and wake one sleeping worker.
    pub(crate) fn inject(&self, job: JobRef) {
        // analyze:allow(hotpath-lock, hotpath-unwrap) — mutex injector by design; job bodies catch panics, so the lock cannot be poisoned
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }

    /// Pop any queued job (help-waiting and steal-back both use this).
    pub(crate) fn try_pop(&self) -> Option<JobRef> {
        // analyze:allow(hotpath-lock, hotpath-unwrap) — mutex injector by design; job bodies catch panics, so the lock cannot be poisoned
        self.queue.lock().unwrap().pop_front()
    }

    /// Remove the specific job identified by `data` from the queue, if no
    /// worker has claimed it yet. On success the caller owns the job again
    /// and must run it inline.
    pub(crate) fn try_reclaim(&self, data: *const ()) -> bool {
        // analyze:allow(hotpath-lock, hotpath-unwrap) — mutex injector by design; job bodies catch panics, so the lock cannot be poisoned
        let mut q = self.queue.lock().unwrap();
        // Our job is most likely near the back (LIFO-ish for the reclaimer).
        match q.iter().rposition(|j| j.data_ptr() == data) {
            Some(pos) => {
                q.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Ask workers to exit once the queue drains.
    pub(crate) fn terminate(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.available.notify_all();
    }

    fn wait_for_job(&self) -> Option<JobRef> {
        // analyze:allow(hotpath-lock, hotpath-unwrap) — mutex injector by design; job bodies catch panics, so the lock cannot be poisoned
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            // analyze:allow(hotpath-unwrap) — Condvar::wait only errs on poisoning, impossible here (see above)
            q = self.available.wait(q).unwrap();
        }
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    CONTEXT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            registry: Arc::clone(&registry),
            index,
        })
    });
    while let Some(job) = registry.wait_for_job() {
        // SAFETY: the job was injected by a construct that keeps it alive
        // until executed; execute catches panics internally.
        unsafe { job.execute() };
    }
}

/// Per-thread pool membership.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) registry: Arc<Registry>,
    pub(crate) index: usize,
}

thread_local! {
    static CONTEXT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// The registry governing parallelism on the calling thread: its own pool
/// if it is a worker, the global registry otherwise.
pub(crate) fn current_registry() -> Arc<Registry> {
    match current_ctx() {
        Some(ctx) => ctx.registry,
        None => Arc::clone(global_registry()),
    }
}

/// Default pool width: `RAYON_NUM_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub(crate) fn default_width() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The process-wide pool used by code running outside any explicit
/// [`crate::ThreadPool`]. It spawns `width - 1` workers because the calling
/// thread participates (via steal-back and help-waiting), keeping total
/// parallelism at `width`.
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let width = default_width();
        let (registry, handles) = Registry::spawn(width, width.saturating_sub(1));
        // Global workers live for the whole process; detach them.
        drop(handles);
        registry
    })
}

/// Execute queued jobs while waiting for `done`; parks briefly when the
/// queue is empty. Used by threads *inside* the pool's computation.
pub(crate) fn cooperative_wait(registry: &Registry, done: impl Fn() -> bool) {
    while !done() {
        match registry.try_pop() {
            // SAFETY: queued jobs are alive until executed (join/scope
            // contract) and never unwind.
            Some(job) => unsafe { job.execute() },
            None => thread::park_timeout(Duration::from_micros(100)),
        }
    }
}

/// A job whose closure, result slot, and completion flag live on the stack
/// frame of the thread that created it (`join` / `install`). That thread
/// must not leave the frame before the job settles.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    done: AtomicBool,
    owner: Thread,
    /// Models the `func` cell (written at construction, taken by the
    /// executor).
    #[cfg(feature = "racecheck")]
    rc_func: crate::racecheck::DataVar,
    /// Models the `result` cell (written by the executor, read by the
    /// owner after settling).
    #[cfg(feature = "racecheck")]
    rc_result: crate::racecheck::DataVar,
    /// Models handing the job ref to the queue (release) / popping it
    /// (acquire) — the edge the queue mutex provides in reality.
    #[cfg(feature = "racecheck")]
    rc_publish: crate::racecheck::SyncVar,
    /// Models the `done` flag's Release store / Acquire load pairing.
    #[cfg(feature = "racecheck")]
    rc_done: crate::racecheck::SyncVar,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> Self {
        let job = StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            owner: thread::current(),
            #[cfg(feature = "racecheck")]
            rc_func: crate::racecheck::DataVar::new("StackJob::func"),
            #[cfg(feature = "racecheck")]
            rc_result: crate::racecheck::DataVar::new("StackJob::result"),
            #[cfg(feature = "racecheck")]
            rc_publish: crate::racecheck::SyncVar::new(),
            #[cfg(feature = "racecheck")]
            rc_done: crate::racecheck::SyncVar::new(),
        };
        #[cfg(feature = "racecheck")]
        job.rc_func.on_write();
        job
    }

    /// Type-erase for injection. The returned ref's `data` pointer doubles
    /// as the reclaim tag. Callers inject the ref immediately, so this is
    /// where the publication edge is modeled.
    pub(crate) fn as_job_ref(&self) -> JobRef {
        #[cfg(feature = "racecheck")]
        self.rc_publish.release();
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute_erased,
        }
    }

    // SAFETY (fn contract): `data` must point to a live StackJob that has
    // not executed yet; both queue paths (worker pop, reclaim) guarantee it.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: per the fn contract the pointee is alive for the call.
        let this = unsafe { &*(data as *const Self) };
        #[cfg(feature = "racecheck")]
        {
            this.rc_publish.acquire();
            this.rc_func.on_read();
        }
        // SAFETY: exactly one thread ever reaches a given job's execute
        // (queue pop and reclaim are mutually exclusive), so the cell is
        // not aliased.
        // analyze:allow(hotpath-unwrap) — double execution is a scheduler bug; panic is the correct response
        let func = unsafe { (*this.func.get()).take() }.expect("stack job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        #[cfg(feature = "racecheck")]
        this.rc_result.on_write();
        // SAFETY: same exclusive access; the owner only reads `result`
        // after observing `done` (Acquire pairing with the store below).
        unsafe { *this.result.get() = Some(result) };
        #[cfg(feature = "racecheck")]
        this.rc_done.release();
        this.done.store(true, Ordering::Release);
        this.owner.unpark();
    }

    /// Run on the current thread (after a successful reclaim).
    pub(crate) fn run_inline(&self) {
        // SAFETY: reclaiming removed the only other path to execution.
        unsafe { Self::execute_erased(self as *const Self as *const ()) }
    }

    #[inline]
    pub(crate) fn is_done(&self) -> bool {
        let done = self.done.load(Ordering::Acquire);
        // A `true` answer licenses the caller to read `result`; model the
        // Acquire pairing with the executor's Release store.
        #[cfg(feature = "racecheck")]
        if done {
            self.rc_done.acquire();
        }
        done
    }

    /// Consume the settled job, resuming its panic if it had one.
    pub(crate) fn into_result(self) -> R {
        #[cfg(feature = "racecheck")]
        self.rc_result.on_read();
        // analyze:allow(hotpath-unwrap) — consuming an unsettled job is a scheduler bug; panic is the correct response
        match self.result.into_inner().expect("stack job not settled") {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap-allocated fire-and-forget job (used by `scope` spawns). The
/// pushed closure must catch its own panics and perform its own completion
/// signalling; `scope` wraps spawns accordingly.
pub(crate) struct HeapJob<F> {
    func: F,
    /// Models the boxed environment (written by `push`, consumed by the
    /// executor).
    #[cfg(feature = "racecheck")]
    rc_func: crate::racecheck::DataVar,
    /// Models the queue hand-off edge, like `StackJob::rc_publish`.
    #[cfg(feature = "racecheck")]
    rc_publish: crate::racecheck::SyncVar,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Box `func` and enqueue it.
    ///
    /// # Safety
    /// `func` may capture non-`'static` data; the caller must guarantee the
    /// captures outlive execution (scope blocks until all spawns finish).
    pub(crate) unsafe fn push(registry: &Registry, func: F) {
        let boxed = Box::new(HeapJob {
            func,
            #[cfg(feature = "racecheck")]
            rc_func: crate::racecheck::DataVar::new("HeapJob::func"),
            #[cfg(feature = "racecheck")]
            rc_publish: crate::racecheck::SyncVar::new(),
        });
        #[cfg(feature = "racecheck")]
        {
            boxed.rc_func.on_write();
            boxed.rc_publish.release();
        }
        registry.inject(JobRef {
            data: Box::into_raw(boxed) as *const (),
            execute: Self::execute_erased,
        });
    }

    // SAFETY (fn contract): `data` must be the Box::into_raw pointer from
    // `push`, and each job is executed exactly once.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: reconstitutes the box allocated in `push`; ownership
        // transfers back exactly once per the fn contract.
        let boxed = unsafe { Box::from_raw(data as *mut Self) };
        #[cfg(feature = "racecheck")]
        {
            boxed.rc_publish.acquire();
            boxed.rc_func.on_read();
        }
        // The scope wrapper inside `func` catches panics; a stray unwind
        // here would tear down a worker, so be defensive anyway.
        let _ = panic::catch_unwind(AssertUnwindSafe(boxed.func));
    }
}
