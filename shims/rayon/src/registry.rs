//! The worker-pool core of the rayon shim.
//!
//! A [`Registry`] is one pool: a small mutex-guarded *injector* queue for
//! jobs submitted from outside the pool, one Chase–Lev stealing
//! [`Deque`](crate::deque::Deque) per worker for jobs forked *inside* it,
//! and a fixed set of persistent worker threads. Every pool-aware entry
//! point (`join`, `scope`, the `Par` terminal ops, `ThreadPool::install`)
//! resolves its registry through a thread-local: worker threads carry
//! `(registry, index)` so nested parallelism stays inside the pool that
//! spawned it, and foreign threads fall back to the lazily created global
//! registry.
//!
//! Scheduling discipline: a worker forking work pushes onto its own deque
//! (LIFO for the owner), so the common uncontended `join` settles with one
//! local pop — no shared queue, no lock. Idle workers scan: own deque,
//! then the injector, then round-robin steals from the other deques (FIFO,
//! taking the oldest — largest — pending subtree). A thread that must wait
//! for a job it enqueued either *reclaims* it (the local pop / injector
//! remove fast path) or *helps* — executing other available jobs until its
//! own completes — which keeps nested `join`s deadlock-free with a bounded
//! worker count. Threads outside the pool (e.g. the caller of `install`)
//! block without helping, so pool-scoped work only ever runs on pool
//! workers and `current_thread_index` stays below the pool width even when
//! a worker is executing a job stolen from a foreign deque.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

use crate::deque::{Deque, Steal};

/// A type-erased pointer to a job living on a stack frame ([`StackJob`]) or
/// on the heap ([`HeapJob`]). The pointee must stay alive until `execute`
/// runs (or the ref is reclaimed from the queue); `join`/`scope` guarantee
/// this by never returning before their jobs settle.
pub(crate) struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
    /// Racecheck-only: the job's publication `SyncVar`, released at the
    /// enqueue site (deque push / injector inject) and acquired at the
    /// dequeue site (steal / injector pop) — modeling the ordering edge
    /// the real queue provides there.
    #[cfg(feature = "racecheck")]
    publish: *const crate::racecheck::SyncVar,
}

// SAFETY: a JobRef is only ever executed once, and the owning construct
// keeps the pointee alive until it is; the pointee's own synchronization
// (atomics + catch_unwind) makes cross-thread execution sound.
unsafe impl Send for JobRef {}

/// The raw words of a [`JobRef`], exposed so the stealing deque can store
/// them in atomic slots (guaranteeing stale-but-never-torn reads).
pub(crate) struct RawJob {
    pub(crate) data: *mut (),
    pub(crate) exec: *mut (),
    #[cfg(feature = "racecheck")]
    pub(crate) publish: *mut (),
}

impl JobRef {
    #[inline]
    pub(crate) fn data_ptr(&self) -> *const () {
        self.data
    }

    /// Decompose into raw words for atomic slot storage.
    #[inline]
    pub(crate) fn into_raw(self) -> RawJob {
        RawJob {
            data: self.data as *mut (),
            exec: self.execute as *mut (),
            #[cfg(feature = "racecheck")]
            publish: self.publish as *mut (),
        }
    }

    /// Reassemble a job from raw words produced by [`JobRef::into_raw`].
    ///
    /// # Safety
    /// The words must originate from one `into_raw` call (the deque's slot
    /// discipline guarantees the pairing), and the usual JobRef liveness
    /// contract must still hold before the job is executed.
    #[inline]
    pub(crate) unsafe fn from_raw(raw: RawJob) -> JobRef {
        JobRef {
            data: raw.data as *const (),
            // SAFETY: `raw.exec` was produced by casting exactly this fn
            // pointer type in `into_raw`, so transmuting back is sound.
            execute: unsafe { std::mem::transmute::<*mut (), unsafe fn(*const ())>(raw.exec) },
            #[cfg(feature = "racecheck")]
            publish: raw.publish as *const crate::racecheck::SyncVar,
        }
    }

    /// Model the enqueue half of the queue hand-off edge.
    ///
    /// # Safety
    /// The job's pointee (which owns the publish var) must be alive, i.e.
    /// the job has not executed yet.
    #[cfg(feature = "racecheck")]
    #[inline]
    pub(crate) unsafe fn release_publish(&self) {
        // SAFETY: per the fn contract the pointee is alive.
        unsafe { (*self.publish).release() }
    }

    /// Model the dequeue half of the queue hand-off edge.
    ///
    /// # Safety
    /// The caller must exclusively own this pending job (a validated steal
    /// or queue pop), so the pointee is alive.
    #[cfg(feature = "racecheck")]
    #[inline]
    pub(crate) unsafe fn acquire_publish(&self) {
        // SAFETY: per the fn contract the pointee is alive.
        unsafe { (*self.publish).acquire() }
    }

    /// Run the job. Job bodies catch panics internally, so this never
    /// unwinds into the caller.
    ///
    /// # Safety
    /// The pointee must still be alive and not yet executed.
    #[inline]
    pub(crate) unsafe fn execute(self) {
        // SAFETY: caller upholds the liveness/once contract above; the
        // execute fn was paired with this data pointer at construction.
        unsafe { (self.execute)(self.data) }
    }
}

/// Per-worker scheduler counters. All increments are `Relaxed` — the
/// counters are observability only (never synchronization), so they add a
/// single uncontended RMW on a cache line the worker already owns.
/// Readers take racy snapshots via [`Registry::metrics`].
pub(crate) struct WorkerStats {
    /// Jobs this worker executed (its own deque, the injector, or steals).
    jobs: AtomicU64,
    /// Individual `Deque::steal` calls this worker issued at other
    /// workers' deques (retries after a lost CAS race count again).
    steal_attempts: AtomicU64,
    /// Steal attempts that yielded a job.
    steal_hits: AtomicU64,
    /// Times this worker parked on the idle condvar.
    parks: AtomicU64,
}

impl WorkerStats {
    fn new() -> WorkerStats {
        WorkerStats {
            jobs: AtomicU64::new(0),
            steal_attempts: AtomicU64::new(0),
            steal_hits: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        }
    }
}

/// One worker pool: per-worker stealing deques, a shared injector for
/// foreign submissions, and membership data.
pub(crate) struct Registry {
    queue: Mutex<VecDeque<JobRef>>,
    available: Condvar,
    /// Workers currently in (or entering) the condvar wait; lets `submit`
    /// skip the notify syscall on the hot push path when nobody sleeps.
    sleepers: AtomicUsize,
    /// One stealing deque per spawned worker, indexed by worker index.
    deques: Vec<Deque>,
    /// One counter block per spawned worker, indexed like `deques`.
    stats: Vec<WorkerStats>,
    /// Jobs pushed through the shared injector (foreign submissions).
    inject_count: AtomicU64,
    width: usize,
    shutdown: AtomicBool,
}

impl Registry {
    /// Create a registry of logical `width` and spawn `workers` persistent
    /// worker threads (indices `0..workers`, always `< width`).
    pub(crate) fn spawn(width: usize, workers: usize) -> (Arc<Registry>, Vec<JoinHandle<()>>) {
        debug_assert!(workers <= width);
        let registry = Arc::new(Registry {
            // analyze:allow(hotpath-lock) — the injector is mutex-based by design; worker-forked jobs go through the lock-free deques instead
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            deques: (0..workers).map(|_| Deque::new()).collect(),
            stats: (0..workers).map(|_| WorkerStats::new()).collect(),
            inject_count: AtomicU64::new(0),
            width: width.max(1),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|index| {
                let r = Arc::clone(&registry);
                thread::Builder::new()
                    .name(format!("rayon-shim-{index}"))
                    // Recursive divide-and-conquer plus help-waiting can nest
                    // deeply; give workers a roomy stack.
                    .stack_size(8 * 1024 * 1024)
                    .spawn(move || worker_main(r, index))
                    // analyze:allow(hotpath-unwrap) — pool construction, runs once per pool
                    .expect("failed to spawn pool worker")
            })
            .collect();
        (registry, handles)
    }

    #[inline]
    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Enqueue a job from the calling thread: onto the caller's own deque
    /// when it is a worker of this pool, onto the injector otherwise.
    pub(crate) fn submit(&self, job: JobRef) {
        match local_index_in(self) {
            Some(index) => {
                self.deques[index].push(job);
                self.notify();
            }
            None => self.inject(job),
        }
    }

    /// Enqueue a job on the shared injector and wake one sleeping worker.
    pub(crate) fn inject(&self, job: JobRef) {
        // The injector mutex is the real publication edge here; model it.
        #[cfg(feature = "racecheck")]
        // SAFETY: the job is enqueued below and its pointee stays alive
        // until executed (join/scope/install contract).
        unsafe {
            job.release_publish()
        };
        self.inject_count.fetch_add(1, Ordering::Relaxed);
        // analyze:allow(hotpath-lock, hotpath-unwrap) — mutex injector by design (foreign submissions only); job bodies catch panics, so the lock cannot be poisoned
        self.queue.lock().unwrap().push_back(job);
        self.available.notify_one();
    }

    /// Pop from the shared injector.
    pub(crate) fn try_pop(&self) -> Option<JobRef> {
        // analyze:allow(hotpath-lock, hotpath-unwrap) — mutex injector by design (foreign submissions only); job bodies catch panics, so the lock cannot be poisoned
        let job = self.queue.lock().unwrap().pop_front();
        #[cfg(feature = "racecheck")]
        if let Some(ref job) = job {
            // SAFETY: we exclusively own this pending job now.
            unsafe { job.acquire_publish() };
        }
        job
    }

    /// Remove the specific job identified by `data` from the injector, if
    /// no worker has claimed it yet. On success the caller owns the job
    /// again and must run it inline. (Worker-pushed jobs are reclaimed via
    /// [`Registry::pop_local`] instead.)
    pub(crate) fn try_reclaim(&self, data: *const ()) -> bool {
        // analyze:allow(hotpath-lock, hotpath-unwrap) — mutex injector by design (foreign submissions only); job bodies catch panics, so the lock cannot be poisoned
        let mut q = self.queue.lock().unwrap();
        // Our job is most likely near the back (LIFO-ish for the reclaimer).
        match q.iter().rposition(|j| j.data_ptr() == data) {
            Some(pos) => {
                q.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Owner-only: pop the calling worker's own deque.
    pub(crate) fn pop_local(&self, index: usize) -> Option<JobRef> {
        let job = self.deques[index].pop();
        if job.is_some() {
            self.stats[index].jobs.fetch_add(1, Ordering::Relaxed);
        }
        job
    }

    /// Find any runnable job: the caller's own deque first (LIFO), then
    /// the injector, then round-robin steals from the other deques.
    ///
    /// Jobs handed to a pool worker (`local == Some`) are counted in its
    /// `jobs` stat; foreign help-waiting threads stay uncounted (they have
    /// no worker slot to charge).
    pub(crate) fn find_work(&self, local: Option<usize>) -> Option<JobRef> {
        let job = self.find_work_inner(local);
        if job.is_some() {
            if let Some(index) = local {
                self.stats[index].jobs.fetch_add(1, Ordering::Relaxed);
            }
        }
        job
    }

    fn find_work_inner(&self, local: Option<usize>) -> Option<JobRef> {
        if let Some(index) = local {
            if let Some(job) = self.deques[index].pop() {
                return Some(job);
            }
        }
        if let Some(job) = self.try_pop() {
            return Some(job);
        }
        self.try_steal(local)
    }

    /// Round-robin over every deque but the thief's own. A lost CAS race
    /// (`Abort`) means somebody made progress, so the sweep restarts.
    fn try_steal(&self, thief: Option<usize>) -> Option<JobRef> {
        let n = self.deques.len();
        if n == 0 {
            return None;
        }
        let start = thief.map_or(0, |i| i + 1);
        loop {
            let mut contended = false;
            for k in 0..n {
                let victim = (start + k) % n;
                if Some(victim) == thief {
                    continue;
                }
                if let Some(i) = thief {
                    self.stats[i].steal_attempts.fetch_add(1, Ordering::Relaxed);
                }
                match self.deques[victim].steal() {
                    Steal::Success(job) => {
                        if let Some(i) = thief {
                            self.stats[i].steal_hits.fetch_add(1, Ordering::Relaxed);
                        }
                        return Some(job);
                    }
                    Steal::Abort => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended {
                return None;
            }
        }
    }

    /// Racy `Relaxed` snapshot of the pool's scheduler counters.
    pub(crate) fn metrics(&self) -> crate::PoolMetrics {
        crate::PoolMetrics {
            workers: self
                .stats
                .iter()
                .map(|s| crate::WorkerMetrics {
                    jobs: s.jobs.load(Ordering::Relaxed),
                    steal_attempts: s.steal_attempts.load(Ordering::Relaxed),
                    steal_hits: s.steal_hits.load(Ordering::Relaxed),
                    parks: s.parks.load(Ordering::Relaxed),
                })
                .collect(),
            injected: self.inject_count.load(Ordering::Relaxed),
        }
    }

    /// Wake one sleeping worker, if any. Cheap test-first: a worker that
    /// races past the check parks on a short timeout, so a missed wake
    /// costs at most one timeout period.
    fn notify(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            self.available.notify_one();
        }
    }

    /// Ask workers to exit once the queues drain.
    pub(crate) fn terminate(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.available.notify_all();
    }

    /// Park an idle worker briefly on the injector condvar. The short
    /// timeout bounds the cost of the benign `notify` race: stealable
    /// deque pushes that missed the sleeper are found on the next scan.
    fn sleep(&self, index: usize) {
        self.stats[index].parks.fetch_add(1, Ordering::Relaxed);
        self.sleepers.fetch_add(1, Ordering::Relaxed);
        // analyze:allow(hotpath-lock, hotpath-unwrap) — idle path only: the worker found no work anywhere
        let q = self.queue.lock().unwrap();
        if q.is_empty() && !self.shutdown.load(Ordering::Acquire) {
            let _ = self
                .available
                .wait_timeout(q, Duration::from_millis(1))
                // analyze:allow(hotpath-unwrap) — Condvar::wait only errs on poisoning, impossible here (job bodies catch panics)
                .unwrap();
        }
        self.sleepers.fetch_sub(1, Ordering::Relaxed);
    }
}

fn worker_main(registry: Arc<Registry>, index: usize) {
    CONTEXT.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            registry: Arc::clone(&registry),
            index,
        })
    });
    loop {
        match registry.find_work(Some(index)) {
            // SAFETY: every queued job's construct keeps it alive until
            // executed; execute catches panics internally.
            Some(job) => unsafe { job.execute() },
            None => {
                if registry.shutdown.load(Ordering::Acquire) {
                    break;
                }
                registry.sleep(index);
            }
        }
    }
}

/// Per-thread pool membership.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) registry: Arc<Registry>,
    pub(crate) index: usize,
}

thread_local! {
    static CONTEXT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn current_ctx() -> Option<Ctx> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// The calling thread's worker index in `registry`, if it is one of that
/// registry's own workers (i.e. owns `registry.deques[index]`).
pub(crate) fn local_index_in(registry: &Registry) -> Option<usize> {
    CONTEXT.with(|c| {
        c.borrow().as_ref().and_then(|ctx| {
            (std::ptr::eq(Arc::as_ptr(&ctx.registry), registry)
                && ctx.index < registry.deques.len())
            .then_some(ctx.index)
        })
    })
}

/// The registry governing parallelism on the calling thread: its own pool
/// if it is a worker, the global registry otherwise.
pub(crate) fn current_registry() -> Arc<Registry> {
    match current_ctx() {
        Some(ctx) => ctx.registry,
        None => Arc::clone(global_registry()),
    }
}

/// Default pool width: `RAYON_NUM_THREADS` when set to a positive integer,
/// otherwise the machine's available parallelism.
pub(crate) fn default_width() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The process-wide pool used by code running outside any explicit
/// [`crate::ThreadPool`]. It spawns `width - 1` workers because the calling
/// thread participates (via steal-back and help-waiting), keeping total
/// parallelism at `width`.
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let width = default_width();
        let (registry, handles) = Registry::spawn(width, width.saturating_sub(1));
        // Global workers live for the whole process; detach them.
        drop(handles);
        registry
    })
}

/// Execute available jobs while waiting for `done`; parks briefly when
/// nothing is runnable. Used by threads *inside* the pool's computation.
pub(crate) fn cooperative_wait(registry: &Registry, done: impl Fn() -> bool) {
    let local = local_index_in(registry);
    while !done() {
        match registry.find_work(local) {
            // SAFETY: queued jobs are alive until executed (join/scope
            // contract) and never unwind.
            Some(job) => unsafe { job.execute() },
            None => thread::park_timeout(Duration::from_micros(100)),
        }
    }
}

/// A job whose closure, result slot, and completion flag live on the stack
/// frame of the thread that created it (`join` / `install`). That thread
/// must not leave the frame before the job settles.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    done: AtomicBool,
    owner: Thread,
    /// Models the `func` cell (written at construction, taken by the
    /// executor).
    #[cfg(feature = "racecheck")]
    rc_func: crate::racecheck::DataVar,
    /// Models the `result` cell (written by the executor, read by the
    /// owner after settling).
    #[cfg(feature = "racecheck")]
    rc_result: crate::racecheck::DataVar,
    /// Models handing the job ref to a queue (released at the enqueue
    /// site, acquired at the dequeue site via [`JobRef::release_publish`] /
    /// [`JobRef::acquire_publish`]) — the edge the deque's `Release`
    /// bottom-store / validated steal (or the injector mutex) provides in
    /// reality.
    #[cfg(feature = "racecheck")]
    rc_publish: crate::racecheck::SyncVar,
    /// Models the `done` flag's Release store / Acquire load pairing.
    #[cfg(feature = "racecheck")]
    rc_done: crate::racecheck::SyncVar,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> Self {
        let job = StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            done: AtomicBool::new(false),
            owner: thread::current(),
            #[cfg(feature = "racecheck")]
            rc_func: crate::racecheck::DataVar::new("StackJob::func"),
            #[cfg(feature = "racecheck")]
            rc_result: crate::racecheck::DataVar::new("StackJob::result"),
            #[cfg(feature = "racecheck")]
            rc_publish: crate::racecheck::SyncVar::new(),
            #[cfg(feature = "racecheck")]
            rc_done: crate::racecheck::SyncVar::new(),
        };
        #[cfg(feature = "racecheck")]
        job.rc_func.on_write();
        job
    }

    /// Type-erase for enqueueing. The returned ref's `data` pointer doubles
    /// as the reclaim tag; the publication edge is modeled at the enqueue
    /// site (deque push or injector inject), not here.
    pub(crate) fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute_erased,
            #[cfg(feature = "racecheck")]
            publish: &self.rc_publish,
        }
    }

    // SAFETY (fn contract): `data` must point to a live StackJob that has
    // not executed yet; every dequeue path (local pop, validated steal,
    // injector pop, reclaim) guarantees it.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: per the fn contract the pointee is alive for the call.
        let this = unsafe { &*(data as *const Self) };
        // (Under racecheck, the executing thread acquired `rc_publish` at
        // the dequeue site, so this read is ordered after the owner's
        // write of `func`; inline reclaim runs on the owning thread.)
        #[cfg(feature = "racecheck")]
        this.rc_func.on_read();
        // SAFETY: exactly one thread ever reaches a given job's execute
        // (the dequeue paths are mutually exclusive), so the cell is not
        // aliased.
        // analyze:allow(hotpath-unwrap) — double execution is a scheduler bug; panic is the correct response
        let func = unsafe { (*this.func.get()).take() }.expect("stack job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        #[cfg(feature = "racecheck")]
        this.rc_result.on_write();
        // SAFETY: same exclusive access; the owner only reads `result`
        // after observing `done` (Acquire pairing with the store below).
        unsafe { *this.result.get() = Some(result) };
        #[cfg(feature = "racecheck")]
        this.rc_done.release();
        this.done.store(true, Ordering::Release);
        this.owner.unpark();
    }

    /// Run on the current thread (after a successful reclaim).
    pub(crate) fn run_inline(&self) {
        // SAFETY: reclaiming removed the only other path to execution.
        unsafe { Self::execute_erased(self as *const Self as *const ()) }
    }

    #[inline]
    pub(crate) fn is_done(&self) -> bool {
        let done = self.done.load(Ordering::Acquire);
        // A `true` answer licenses the caller to read `result`; model the
        // Acquire pairing with the executor's Release store.
        #[cfg(feature = "racecheck")]
        if done {
            self.rc_done.acquire();
        }
        done
    }

    /// Consume the settled job, resuming its panic if it had one.
    pub(crate) fn into_result(self) -> R {
        #[cfg(feature = "racecheck")]
        self.rc_result.on_read();
        // analyze:allow(hotpath-unwrap) — consuming an unsettled job is a scheduler bug; panic is the correct response
        match self.result.into_inner().expect("stack job not settled") {
            Ok(v) => v,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

/// A heap-allocated fire-and-forget job (used by `scope` spawns). The
/// pushed closure must catch its own panics and perform its own completion
/// signalling; `scope` wraps spawns accordingly.
pub(crate) struct HeapJob<F> {
    func: F,
    /// Models the boxed environment (written by `push`, consumed by the
    /// executor).
    #[cfg(feature = "racecheck")]
    rc_func: crate::racecheck::DataVar,
    /// Models the queue hand-off edge, like `StackJob::rc_publish`.
    #[cfg(feature = "racecheck")]
    rc_publish: crate::racecheck::SyncVar,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Box `func` and enqueue it on the caller's deque (worker) or the
    /// injector (foreign thread).
    ///
    /// # Safety
    /// `func` may capture non-`'static` data; the caller must guarantee the
    /// captures outlive execution (scope blocks until all spawns finish).
    pub(crate) unsafe fn push(registry: &Registry, func: F) {
        let boxed = Box::new(HeapJob {
            func,
            #[cfg(feature = "racecheck")]
            rc_func: crate::racecheck::DataVar::new("HeapJob::func"),
            #[cfg(feature = "racecheck")]
            rc_publish: crate::racecheck::SyncVar::new(),
        });
        #[cfg(feature = "racecheck")]
        boxed.rc_func.on_write();
        let data = Box::into_raw(boxed);
        registry.submit(JobRef {
            data: data as *const (),
            execute: Self::execute_erased,
            // SAFETY: `data` points to the live box just leaked above; the
            // publish var lives inside it until execution.
            #[cfg(feature = "racecheck")]
            publish: unsafe { &(*data).rc_publish },
        });
    }

    // SAFETY (fn contract): `data` must be the Box::into_raw pointer from
    // `push`, and each job is executed exactly once.
    unsafe fn execute_erased(data: *const ()) {
        // SAFETY: reconstitutes the box allocated in `push`; ownership
        // transfers back exactly once per the fn contract.
        let boxed = unsafe { Box::from_raw(data as *mut Self) };
        // (The dequeue site acquired `rc_publish`, ordering this read
        // after `push`'s write of the environment.)
        #[cfg(feature = "racecheck")]
        boxed.rc_func.on_read();
        // The scope wrapper inside `func` catches panics; a stray unwind
        // here would tear down a worker, so be defensive anyway.
        let _ = panic::catch_unwind(AssertUnwindSafe(boxed.func));
    }
}
