//! Offline stand-in for the subset of
//! [serde_json](https://docs.rs/serde_json) used by this workspace:
//! [`Value`], [`to_value`], [`to_string`], [`to_string_pretty`], and a
//! [`json!`] macro for flat object literals.

pub use serde::Value;

/// Serialization error. The shim's serializer is total, so this is only
/// here to keep `Result`-shaped signatures source-compatible.
#[derive(Debug)]
pub struct Error {
    _priv: (),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("serde_json shim error")
    }
}

impl std::error::Error for Error {}

pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_json())
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_json().to_json_string())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_json().to_json_string_pretty())
}

/// Build a [`Value`] from a JSON-shaped literal. Supports `null`, arrays of
/// expressions, objects with string-literal keys and expression values, and
/// bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$element).unwrap() ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value).unwrap()) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_shapes() {
        let v = json!({"a": 1u32, "b": 2.5f64, "c": "x"});
        assert_eq!(v.to_json_string(), r#"{"a":1,"b":2.5,"c":"x"}"#);
        assert_eq!(json!(null), crate::Value::Null);
        assert_eq!(json!([1u32, 2u32]).to_json_string(), "[1,2]");
        assert_eq!(json!(7u64).to_json_string(), "7");
    }

    #[test]
    fn to_string_roundtrips_shapes() {
        let rows = vec![1u32, 2, 3];
        assert_eq!(crate::to_string(&rows).unwrap(), "[1,2,3]");
        assert!(crate::to_string_pretty(&rows).unwrap().contains('\n'));
    }
}
