//! Offline stand-in for the subset of
//! [serde_json](https://docs.rs/serde_json) used by this workspace:
//! [`Value`], [`to_value`], [`to_string`], [`to_string_pretty`], a
//! [`from_str`] parser into [`Value`], and a [`json!`] macro for flat
//! object literals.
//!
//! Simplification vs. the real crate: [`from_str`] is not generic over
//! `Deserialize` — it always produces a [`Value`] tree, which callers walk
//! with the accessor methods (`get`, `as_f64`, `as_array`, ...).

pub use serde::Value;

/// Serialization/parse error carrying a human-readable message.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document into a [`Value`]. Accepts the full JSON grammar
/// (RFC 8259): nested arrays/objects, escaped strings including `\uXXXX`
/// (with surrogate pairs), and numbers parsed as `UInt`/`Int` when integral
/// and in range, `Float` otherwise. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

/// Maximum nesting depth accepted by [`from_str`] — bounds stack use on
/// adversarial inputs (the parser recurses per nesting level).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::new("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a low surrogate must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(Error::new("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string"));
                }
                Some(b) => {
                    // Copy one UTF-8 character: validate only its own bytes
                    // (validating the whole remaining input per character
                    // would make string parsing quadratic).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(Error::new("invalid UTF-8 in string")),
                    };
                    let end = self.pos + len;
                    if end > self.bytes.len() {
                        return Err(Error::new("truncated UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(Error::new(format!("invalid number at byte {start}")));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(Error::new(format!("invalid number at byte {start}")));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize_json())
}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_json().to_json_string())
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.serialize_json().to_json_string_pretty())
}

/// Build a [`Value`] from a JSON-shaped literal. Supports `null`, arrays of
/// expressions, objects with string-literal keys and expression values, and
/// bare serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$element).unwrap() ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::to_value(&$value).unwrap()) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_shapes() {
        let v = json!({"a": 1u32, "b": 2.5f64, "c": "x"});
        assert_eq!(v.to_json_string(), r#"{"a":1,"b":2.5,"c":"x"}"#);
        assert_eq!(json!(null), crate::Value::Null);
        assert_eq!(json!([1u32, 2u32]).to_json_string(), "[1,2]");
        assert_eq!(json!(7u64).to_json_string(), "7");
    }

    #[test]
    fn to_string_roundtrips_shapes() {
        let rows = vec![1u32, 2, 3];
        assert_eq!(crate::to_string(&rows).unwrap(), "[1,2,3]");
        assert!(crate::to_string_pretty(&rows).unwrap().contains('\n'));
    }

    use crate::{from_str, Value};

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" false ").unwrap(), Value::Bool(false));
        assert_eq!(from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("-0.125").unwrap(), Value::Float(-0.125));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            from_str(r#"{"eps": 1.5, "points": [[0.0, 1.0], [2.0, 3.0]], "tag": null}"#).unwrap();
        assert_eq!(v.get("eps").and_then(Value::as_f64), Some(1.5));
        let pts = v.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].as_array().unwrap()[0].as_f64(), Some(2.0));
        assert!(v.get("tag").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap(),
            Value::String("a\"b\\c\nA😀".into())
        );
    }

    #[test]
    fn roundtrips_through_renderer() {
        let original = json!({"a": 1u32, "b": [1.5f64, 2.0f64], "c": "x\"y"});
        let parsed = from_str(&original.to_json_string()).unwrap();
        assert_eq!(parsed, original);
        let pretty = from_str(&original.to_json_string_pretty()).unwrap();
        assert_eq!(pretty, original);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "nul",
            "{\"a\" 1}",
            "\"unterminated",
            "1 2",
            "{\"a\":}",
            "[1,]",
            "- 5",
            "01x",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(from_str(&deep).is_err());
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // Regression guard: per-character whole-input UTF-8 validation made
        // this quadratic (a 256 KiB string took minutes).
        let long = "aé😀".repeat(40_000);
        let doc = format!("{{\"s\": \"{long}\"}}");
        let v = from_str(&doc).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(long.as_str()));
    }
}
