//! Offline stand-in for serde_derive's `#[derive(Serialize)]`.
//!
//! Supports exactly what this workspace needs: non-generic structs with
//! named fields, plus the `#[serde(skip_serializing_if = "path")]` field
//! attribute. The macro hand-parses the token stream (no `syn`/`quote`
//! available offline) and emits an impl of the `serde` shim's
//! `Serialize` trait producing a `serde::Value::Object` in declaration
//! order.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip_if: Option<String>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Extract `skip_serializing_if = "path"` from the tokens of a
/// `#[serde(...)]` attribute's bracket group.
fn parse_serde_attr(tokens: &[TokenTree]) -> Option<String> {
    // Expected shape: Ident("serde"), Group(paren){ Ident, '=', Literal }.
    match tokens {
        [TokenTree::Ident(kw), TokenTree::Group(args)] if kw.to_string() == "serde" => {
            let inner: Vec<TokenTree> = args.stream().into_iter().collect();
            let mut i = 0;
            while i + 2 < inner.len() + 1 {
                if let (
                    Some(TokenTree::Ident(key)),
                    Some(TokenTree::Punct(eq)),
                    Some(TokenTree::Literal(value)),
                ) = (inner.get(i), inner.get(i + 1), inner.get(i + 2))
                {
                    if key.to_string() == "skip_serializing_if" && eq.as_char() == '=' {
                        let raw = value.to_string();
                        return Some(raw.trim_matches('"').to_string());
                    }
                }
                i += 1;
            }
            None
        }
        _ => None,
    }
}

fn parse_fields(body: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut pending_skip: Option<String> = None;
    let mut i = 0;
    while i < body.len() {
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let Some(TokenTree::Group(attr)) = body.get(i + 1) else {
                    return Err("expected [...] after #".to_string());
                };
                let attr_tokens: Vec<TokenTree> = attr.stream().into_iter().collect();
                if let Some(path) = parse_serde_attr(&attr_tokens) {
                    pending_skip = Some(path);
                }
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // Skip a restriction like `(crate)`.
                if let Some(TokenTree::Group(g)) = body.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(name) => {
                match body.get(i + 1) {
                    Some(TokenTree::Punct(colon)) if colon.as_char() == ':' => {}
                    _ => return Err(format!("expected `:` after field `{name}`")),
                }
                fields.push(Field {
                    name: name.to_string(),
                    skip_if: pending_skip.take(),
                });
                // Skip the type: advance to the next comma that is not
                // inside angle brackets.
                i += 2;
                let mut angle_depth = 0i32;
                while i < body.len() {
                    if let TokenTree::Punct(p) = &body[i] {
                        match p.as_char() {
                            '<' => angle_depth += 1,
                            '>' => angle_depth -= 1,
                            ',' if angle_depth == 0 => {
                                i += 1;
                                break;
                            }
                            _ => {}
                        }
                    }
                    i += 1;
                }
            }
            other => return Err(format!("unexpected token `{other}` in struct body")),
        }
    }
    Ok(fields)
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();

    // Locate `struct <Name> { ... }`, skipping leading attributes and
    // visibility.
    let mut struct_pos = None;
    for (i, tok) in tokens.iter().enumerate() {
        if let TokenTree::Ident(id) = tok {
            if id.to_string() == "struct" {
                struct_pos = Some(i);
                break;
            }
        }
    }
    let Some(pos) = struct_pos else {
        return compile_error("derive(Serialize) shim supports only structs");
    };
    let Some(TokenTree::Ident(name)) = tokens.get(pos + 1) else {
        return compile_error("expected struct name");
    };
    let Some(TokenTree::Group(body)) = tokens.get(pos + 2) else {
        return compile_error(
            "derive(Serialize) shim supports only non-generic structs with named fields",
        );
    };
    if body.delimiter() != Delimiter::Brace {
        return compile_error("derive(Serialize) shim supports only named-field structs");
    }

    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let fields = match parse_fields(&body_tokens) {
        Ok(fields) => fields,
        Err(msg) => return compile_error(&msg),
    };

    let mut pushes = String::new();
    for field in &fields {
        let push = format!(
            "fields.push(({:?}.to_string(), ::serde::Serialize::serialize_json(&self.{})));",
            field.name, field.name
        );
        match &field.skip_if {
            Some(path) => {
                pushes.push_str(&format!(
                    "if !({path})(&self.{}) {{ {push} }}\n",
                    field.name
                ));
            }
            None => {
                pushes.push_str(&push);
                pushes.push('\n');
            }
        }
    }

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_json(&self) -> ::serde::Value {{\n\
                 let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}\n"
    )
    .parse()
    .expect("serde_derive shim generated invalid Rust")
}
