//! Offline stand-in for the subset of
//! [parking_lot](https://docs.rs/parking_lot) used by this workspace: a
//! [`Mutex`] whose `lock()` returns the guard directly (no `Result`).
//!
//! Built on [`std::sync::Mutex`]; poisoning is deliberately ignored to match
//! parking_lot's semantics (a panicked critical section does not wedge every
//! later lock attempt).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-tolerant `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
