//! Offline stand-in for the subset of [serde](https://docs.rs/serde) used by
//! this workspace: `#[derive(Serialize)]` on plain structs, serialized to a
//! JSON [`Value`] tree that the sibling `serde_json` shim renders.
//!
//! The derive macro (re-exported from the `serde_derive` shim) honors
//! `#[serde(skip_serializing_if = "path")]`, the only serde field attribute
//! the workspace uses.

/// A JSON document. Lives here (rather than in `serde_json`) so the
/// [`Serialize`] trait can produce it without a circular dependency;
/// `serde_json` re-exports it under the familiar `serde_json::Value` name.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Finite floating-point number. Non-finite values render as `null`,
    /// matching serde_json's behavior.
    Float(f64),
    Int(i64),
    UInt(u64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered object, mirroring serde_json's `preserve_order`.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn write_escaped(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_float(x: f64, out: &mut String) {
        if !x.is_finite() {
            out.push_str("null");
        } else if x == x.trunc() && x.abs() < 1e15 {
            // Render integral floats with a trailing ".0" like serde_json.
            out.push_str(&format!("{x:.1}"));
        } else {
            out.push_str(&format!("{x}"));
        }
    }

    fn render(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Float(x) => Self::write_float(*x, out),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::String(s) => Self::write_escaped(s, out),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::newline_indent(out, indent, level + 1);
                    item.render(out, indent, level + 1);
                }
                Self::newline_indent(out, indent, level);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Self::newline_indent(out, indent, level + 1);
                    Self::write_escaped(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.render(out, indent, level + 1);
                }
                Self::newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }

    fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * level {
                out.push(' ');
            }
        }
    }

    /// Compact rendering.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation, like
    /// `serde_json::to_string_pretty`.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, Some(2), 0);
        out
    }

    // ---- Accessors mirroring serde_json::Value's read API ----

    /// Field of an object by key (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

/// Conversion into a JSON [`Value`]. The derive macro implements this; the
/// method name is shim-specific and deliberately unusual so it cannot
/// shadow anything in user code.
pub trait Serialize {
    fn serialize_json(&self) -> Value;
}

// Also export the derive macro under the same name, mirroring serde's
// trait/macro pairing: `use serde::Serialize` pulls in both namespaces.
pub use serde_derive::Serialize;

impl Serialize for Value {
    fn serialize_json(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self) -> Value {
        (**self).serialize_json()
    }
}

impl Serialize for bool {
    fn serialize_json(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_json(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for str {
    fn serialize_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self) -> Value {
        match self {
            Some(v) => v.serialize_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_json).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
        ]);
        assert_eq!(v.to_json_string(), r#"{"a":1,"b":[true,null]}"#);
        let pretty = v.to_json_string_pretty();
        assert!(pretty.contains("\n  \"a\": 1"), "{pretty}");
    }

    #[test]
    fn floats_render_like_serde_json() {
        assert_eq!(Value::Float(2.0).to_json_string(), "2.0");
        assert_eq!(Value::Float(0.25).to_json_string(), "0.25");
        assert_eq!(Value::Float(f64::NAN).to_json_string(), "null");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Value::String("a\"b\\c\n".into()).to_json_string(),
            r#""a\"b\\c\n""#
        );
    }

    #[test]
    fn option_and_collections() {
        assert_eq!(None::<u32>.serialize_json(), Value::Null);
        assert_eq!(Some(3u32).serialize_json(), Value::UInt(3));
        assert_eq!(
            vec![1i64, -2].serialize_json(),
            Value::Array(vec![Value::Int(1), Value::Int(-2)])
        );
    }
}
