//! Offline stand-in for the subset of
//! [proptest](https://docs.rs/proptest) used by this workspace: the
//! `proptest!` macro, range/tuple/`any`/`collection::vec` strategies,
//! `prop_map`, and the `prop_assert*`/`prop_assume!` family.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from a
//! seed derived from the test name (deterministic across runs). There is no
//! shrinking — a failing case reports its inputs' debug representation via
//! the panic message instead.

use rand::prelude::*;
use std::ops::Range;

/// Deterministic per-test RNG: FNV-1a over the test name, as the seed.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not a failure.
    Reject(String),
    /// `prop_assert*` failed.
    Fail(String),
}

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Case count actually run: the `PROPTEST_CASES` environment variable
    /// (as in real proptest) overrides the configured count, so CI can dial
    /// property tests up or down without touching sources.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// A generator of random values. No shrinking.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}

impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, 2..80)`: a vector with length drawn from the range.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors proptest's prelude module `prop` (e.g. `prop::collection`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            ::std::stringify!($left),
            ::std::stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            ::std::stringify!($left),
            ::std::stringify!($right),
            left
        );
    }};
}

/// The main entry point: a block of `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr;) => {};
    (
        $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for(::std::stringify!($name));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let cases = config.effective_cases();
            while passed < cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(reason)) => {
                        rejected += 1;
                        assert!(
                            rejected < 1000 + cases * 20,
                            "proptest: too many rejected cases ({reason})"
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!(
                            "proptest case failed: {message}\n  inputs: {:?}",
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::rng_for("strategies_sample_in_bounds");
        let s = prop::collection::vec((0i32..10, 0u8..4), 2..30);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..30).contains(&v.len()));
            for (a, b) in v {
                assert!((0..10).contains(&a));
                assert!(b < 4);
            }
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::rng_for("prop_map_applies");
        let s = (0u32..5).prop_map(|x| x * 100);
        for _ in 0..50 {
            let v = s.sample(&mut rng);
            assert!(v % 100 == 0 && v < 500);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_runs_and_assumes(x in 0u32..100, y in 0u32..100) {
            prop_assume!(x != y);
            prop_assert!(x + y < 200, "sum {}", x + y);
            prop_assert_eq!(x + y, y + x);
            prop_assert_ne!(x, y);
        }
    }
}
