//! Offline stand-in for the subset of [rand](https://docs.rs/rand) used by
//! this workspace (`StdRng::seed_from_u64`, `gen`, `gen_range`, `gen_bool`,
//! and slice shuffling).
//!
//! The generator behind [`StdRng`] is xoshiro256++ seeded through SplitMix64
//! — statistically solid for test-data generation and, crucially for this
//! workspace's determinism tests, fully reproducible from the seed. The
//! stream differs from upstream rand's ChaCha12-based `StdRng`; nothing in
//! the workspace depends on the concrete stream, only on reproducibility.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom, SmallRng, StdRng};
}

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// xoshiro256++ with SplitMix64 seed expansion.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// The workspace only needs one generator quality level; `SmallRng` is an
/// alias so `rand::prelude::*` users keep compiling.
pub type SmallRng = StdRng;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Values samplable by `rng.gen()`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by `rng.gen_range(..)`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Modulo bias is negligible for the test-scale spans used
                // here and keeps sampling a single RNG step (determinism).
                (self.start as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add((rng.next_u64() % (span + 1)) as $wide) as $t
            }
        }
    )*};
}

impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: f64 = Standard::sample_standard(rng);
                let v = self.start + (u as $t) * (self.end - self.start);
                // Rounding (e.g. a [0,1) f64 cast to f32, or start + u*span
                // rounding up) can land exactly on the exclusive bound; nudge
                // back inside the half-open interval.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v.max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let u: f64 = Standard::sample_standard(rng);
                start + (u as $t) * (end - start)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// The user-facing sampling methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample_standard(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling (Fisher–Yates), the only `SliceRandom` method used here.
pub trait SliceRandom {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: i32 = rng.gen_range(-5..17);
            assert!((-5..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: usize = rng.gen_range(0..=3);
            assert!(z <= 3);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..1000).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..1000).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle should move something");
    }
}
